#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "serve/feature_key.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qkmps::serve::workload {

const char* to_string(KeyPattern pattern) {
  switch (pattern) {
    case KeyPattern::kUniform:
      return "uniform";
    case KeyPattern::kZipf:
      return "zipf";
    case KeyPattern::kDuplicateHeavy:
      return "duplicate-heavy";
  }
  return "unknown";
}

const char* to_string(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kSteady:
      return "steady";
    case ArrivalPattern::kBurst:
      return "burst";
    case ArrivalPattern::kRamp:
      return "ramp";
  }
  return "unknown";
}

std::vector<double> Scenario::request(idx r) const {
  QKMPS_CHECK(r >= 0 && r < size());
  const idx row = order[static_cast<std::size_t>(r)];
  return std::vector<double>(unique_points.row(row),
                             unique_points.row(row) + unique_points.cols());
}

namespace {

/// Inverse-CDF sampling over ranks 1..n with P(k) ~ k^-s. The table is
/// built once per scenario; lookups binary-search the cumulative weights.
std::vector<double> zipf_cdf(idx n, double s) {
  std::vector<double> cdf(static_cast<std::size_t>(n));
  double total = 0.0;
  for (idx k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf[static_cast<std::size_t>(k)] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

/// FNV-1a byte fold shared by the eager digest and the streaming one —
/// both must walk the same byte sequence or the bitwise-preservation
/// contract breaks.
void fnv_mix(std::uint64_t& h, const void* bytes, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
}

/// The arrival offset of request r, advanced one request at a time.
/// Arrivals are a pure function of the config (no randomness), which is
/// what lets Stream::digest() re-fold them in O(1) memory after the
/// order bytes. The per-pattern arithmetic must stay expression-for-
/// expression identical to what make_arrivals() historically computed.
double arrival_at(const ScenarioConfig& cfg, idx r, double& ramp_t) {
  switch (cfg.arrival) {
    case ArrivalPattern::kSteady:
      return cfg.mean_gap_us * static_cast<double>(r);
    case ArrivalPattern::kBurst:
      return cfg.burst_gap_us * static_cast<double>(r / cfg.burst_size);
    case ArrivalPattern::kRamp: {
      // Gap shrinks linearly from mean_gap_us down to
      // mean_gap_us / ramp_factor by the final request.
      const double at = ramp_t;
      const double n1 = static_cast<double>(
          std::max<idx>(1, cfg.num_requests - 1));
      const double frac = static_cast<double>(r) / n1;
      const double gap =
          cfg.mean_gap_us * (1.0 - frac * (1.0 - 1.0 / cfg.ramp_factor));
      ramp_t += gap;
      return at;
    }
  }
  return 0.0;
}

}  // namespace

Stream::Stream(const ScenarioConfig& cfg, const kernel::RealMatrix& pool)
    : config_(cfg), rng_(cfg.seed) {
  QKMPS_CHECK(cfg.num_requests >= 1);
  QKMPS_CHECK(cfg.num_unique >= 1);
  QKMPS_CHECK_MSG(pool.rows() >= cfg.num_unique,
                  "pool has " << pool.rows() << " rows, scenario needs "
                              << cfg.num_unique << " unique points");
  QKMPS_CHECK(cfg.burst_size >= 1);
  QKMPS_CHECK(cfg.ramp_factor >= 1.0);

  // Unique points: a deterministic sample of distinct pool rows
  // (partial Fisher-Yates over the row indices).
  std::vector<idx> rows(static_cast<std::size_t>(pool.rows()));
  for (idx i = 0; i < pool.rows(); ++i) rows[static_cast<std::size_t>(i)] = i;
  for (idx i = 0; i < cfg.num_unique; ++i) {
    const idx j = i + static_cast<idx>(rng_.uniform_int(
                          static_cast<std::uint64_t>(pool.rows() - i)));
    std::swap(rows[static_cast<std::size_t>(i)],
              rows[static_cast<std::size_t>(j)]);
  }
  unique_points_ = kernel::RealMatrix(cfg.num_unique, pool.cols());
  for (idx i = 0; i < cfg.num_unique; ++i)
    std::copy(pool.row(rows[static_cast<std::size_t>(i)]),
              pool.row(rows[static_cast<std::size_t>(i)]) + pool.cols(),
              unique_points_.row(i));

  if (cfg.keys == KeyPattern::kZipf)
    zipf_cdf_ = zipf_cdf(cfg.num_unique, cfg.zipf_exponent);

  order_hash_ = feature_hash(
      unique_points_.data(),
      static_cast<std::size_t>(unique_points_.rows() * unique_points_.cols()));
}

idx Stream::next_unique() {
  switch (config_.keys) {
    case KeyPattern::kUniform:
      return static_cast<idx>(
          rng_.uniform_int(static_cast<std::uint64_t>(config_.num_unique)));
    case KeyPattern::kZipf: {
      const double u = rng_.uniform();
      const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
      return static_cast<idx>(std::min<std::ptrdiff_t>(
          it - zipf_cdf_.begin(), config_.num_unique - 1));
    }
    case KeyPattern::kDuplicateHeavy:
      if (emitted_ > 0 && rng_.uniform() < config_.repeat_fraction)
        return prev_unique_;
      return static_cast<idx>(
          rng_.uniform_int(static_cast<std::uint64_t>(config_.num_unique)));
  }
  return 0;
}

bool Stream::next(Item& out) {
  if (exhausted()) return false;
  out.request = emitted_;
  out.unique = next_unique();
  out.arrival_us = arrival_at(config_, emitted_, ramp_t_);
  prev_unique_ = out.unique;
  const std::uint64_t v = static_cast<std::uint64_t>(out.unique);
  fnv_mix(order_hash_, &v, sizeof v);
  ++emitted_;
  return true;
}

std::vector<double> Stream::request(idx unique) const {
  QKMPS_CHECK(unique >= 0 && unique < unique_points_.rows());
  return std::vector<double>(
      unique_points_.row(unique),
      unique_points_.row(unique) + unique_points_.cols());
}

std::uint64_t Stream::digest() const {
  QKMPS_CHECK_MSG(exhausted(),
                  "stream digest is only defined once every request has been "
                  "emitted ("
                      << emitted_ << " of " << config_.num_requests << ")");
  if (digest_cached_) return digest_;
  // The eager digest folds all order bytes, then all arrival bytes.
  // Orders folded incrementally in next(); arrivals are deterministic, so
  // re-derive them here without ever holding the schedule.
  std::uint64_t h = order_hash_;
  double ramp_t = 0.0;
  for (idx r = 0; r < config_.num_requests; ++r) {
    const double t = arrival_at(config_, r, ramp_t);
    fnv_mix(h, &t, sizeof t);
  }
  digest_ = h;
  digest_cached_ = true;
  return digest_;
}

Scenario make_scenario(const ScenarioConfig& cfg,
                       const kernel::RealMatrix& pool) {
  Stream stream(cfg, pool);
  Scenario s;
  s.config = cfg;
  s.unique_points = stream.unique_points();
  s.order.reserve(static_cast<std::size_t>(cfg.num_requests));
  s.arrival_us.reserve(static_cast<std::size_t>(cfg.num_requests));
  Stream::Item item;
  while (stream.next(item)) {
    s.order.push_back(item.unique);
    s.arrival_us.push_back(item.arrival_us);
  }
  return s;
}

std::uint64_t scenario_digest(const Scenario& scenario) {
  // FNV-1a, seeded by the unique-point bits, then folded over order and
  // arrival bits — any byte-level divergence changes the digest.
  std::uint64_t h = feature_hash(
      scenario.unique_points.data(),
      static_cast<std::size_t>(scenario.unique_points.rows() *
                               scenario.unique_points.cols()));
  for (idx row : scenario.order) {
    const std::uint64_t v = static_cast<std::uint64_t>(row);
    fnv_mix(h, &v, sizeof v);
  }
  for (double t : scenario.arrival_us) fnv_mix(h, &t, sizeof t);
  return h;
}

std::vector<ScenarioConfig> standard_scenarios(idx num_requests,
                                               idx num_unique,
                                               std::uint64_t seed) {
  std::vector<ScenarioConfig> suite;

  ScenarioConfig uniform;
  uniform.name = "uniform-steady";
  uniform.seed = seed;
  uniform.num_requests = num_requests;
  uniform.num_unique = num_unique;
  suite.push_back(uniform);

  ScenarioConfig zipf = uniform;
  zipf.name = "zipf-hotkey";
  zipf.seed = seed + 1;
  zipf.keys = KeyPattern::kZipf;
  zipf.zipf_exponent = 1.2;
  suite.push_back(zipf);

  ScenarioConfig dup = uniform;
  dup.name = "duplicate-heavy";
  dup.seed = seed + 2;
  dup.keys = KeyPattern::kDuplicateHeavy;
  dup.repeat_fraction = 0.6;
  suite.push_back(dup);

  ScenarioConfig burst = uniform;
  burst.name = "uniform-burst";
  burst.seed = seed + 3;
  burst.arrival = ArrivalPattern::kBurst;
  burst.burst_size = std::max<idx>(1, num_requests / 8);
  burst.burst_gap_us = 400;
  suite.push_back(burst);

  ScenarioConfig ramp = zipf;
  ramp.name = "zipf-ramp";
  ramp.seed = seed + 4;
  ramp.arrival = ArrivalPattern::kRamp;
  ramp.mean_gap_us = 200;
  ramp.ramp_factor = 8.0;
  suite.push_back(ramp);

  return suite;
}

}  // namespace qkmps::serve::workload
