#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "serve/feature_key.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qkmps::serve::workload {

const char* to_string(KeyPattern pattern) {
  switch (pattern) {
    case KeyPattern::kUniform:
      return "uniform";
    case KeyPattern::kZipf:
      return "zipf";
    case KeyPattern::kDuplicateHeavy:
      return "duplicate-heavy";
  }
  return "unknown";
}

const char* to_string(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kSteady:
      return "steady";
    case ArrivalPattern::kBurst:
      return "burst";
    case ArrivalPattern::kRamp:
      return "ramp";
  }
  return "unknown";
}

std::vector<double> Scenario::request(idx r) const {
  QKMPS_CHECK(r >= 0 && r < size());
  const idx row = order[static_cast<std::size_t>(r)];
  return std::vector<double>(unique_points.row(row),
                             unique_points.row(row) + unique_points.cols());
}

namespace {

/// Inverse-CDF sampling over ranks 1..n with P(k) ~ k^-s. The table is
/// built once per scenario; lookups binary-search the cumulative weights.
std::vector<double> zipf_cdf(idx n, double s) {
  std::vector<double> cdf(static_cast<std::size_t>(n));
  double total = 0.0;
  for (idx k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf[static_cast<std::size_t>(k)] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

std::vector<idx> make_order(const ScenarioConfig& cfg, Rng& rng) {
  std::vector<idx> order(static_cast<std::size_t>(cfg.num_requests));
  switch (cfg.keys) {
    case KeyPattern::kUniform:
      for (idx r = 0; r < cfg.num_requests; ++r)
        order[static_cast<std::size_t>(r)] = static_cast<idx>(
            rng.uniform_int(static_cast<std::uint64_t>(cfg.num_unique)));
      break;
    case KeyPattern::kZipf: {
      const std::vector<double> cdf = zipf_cdf(cfg.num_unique,
                                               cfg.zipf_exponent);
      for (idx r = 0; r < cfg.num_requests; ++r) {
        const double u = rng.uniform();
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        order[static_cast<std::size_t>(r)] = static_cast<idx>(
            std::min<std::ptrdiff_t>(it - cdf.begin(), cfg.num_unique - 1));
      }
      break;
    }
    case KeyPattern::kDuplicateHeavy:
      for (idx r = 0; r < cfg.num_requests; ++r) {
        if (r > 0 && rng.uniform() < cfg.repeat_fraction)
          order[static_cast<std::size_t>(r)] =
              order[static_cast<std::size_t>(r - 1)];
        else
          order[static_cast<std::size_t>(r)] = static_cast<idx>(
              rng.uniform_int(static_cast<std::uint64_t>(cfg.num_unique)));
      }
      break;
  }
  return order;
}

std::vector<double> make_arrivals(const ScenarioConfig& cfg) {
  std::vector<double> at(static_cast<std::size_t>(cfg.num_requests), 0.0);
  switch (cfg.arrival) {
    case ArrivalPattern::kSteady:
      for (idx r = 0; r < cfg.num_requests; ++r)
        at[static_cast<std::size_t>(r)] =
            cfg.mean_gap_us * static_cast<double>(r);
      break;
    case ArrivalPattern::kBurst:
      for (idx r = 0; r < cfg.num_requests; ++r)
        at[static_cast<std::size_t>(r)] =
            cfg.burst_gap_us * static_cast<double>(r / cfg.burst_size);
      break;
    case ArrivalPattern::kRamp: {
      // Gap shrinks linearly from mean_gap_us down to
      // mean_gap_us / ramp_factor by the final request.
      double t = 0.0;
      const double n1 = static_cast<double>(
          std::max<idx>(1, cfg.num_requests - 1));
      for (idx r = 0; r < cfg.num_requests; ++r) {
        at[static_cast<std::size_t>(r)] = t;
        const double frac = static_cast<double>(r) / n1;
        const double gap =
            cfg.mean_gap_us * (1.0 - frac * (1.0 - 1.0 / cfg.ramp_factor));
        t += gap;
      }
      break;
    }
  }
  return at;
}

}  // namespace

Scenario make_scenario(const ScenarioConfig& cfg,
                       const kernel::RealMatrix& pool) {
  QKMPS_CHECK(cfg.num_requests >= 1);
  QKMPS_CHECK(cfg.num_unique >= 1);
  QKMPS_CHECK_MSG(pool.rows() >= cfg.num_unique,
                  "pool has " << pool.rows() << " rows, scenario needs "
                              << cfg.num_unique << " unique points");
  QKMPS_CHECK(cfg.burst_size >= 1);
  QKMPS_CHECK(cfg.ramp_factor >= 1.0);

  Rng rng(cfg.seed);
  Scenario s;
  s.config = cfg;

  // Unique points: a deterministic sample of distinct pool rows
  // (partial Fisher-Yates over the row indices).
  std::vector<idx> rows(static_cast<std::size_t>(pool.rows()));
  for (idx i = 0; i < pool.rows(); ++i) rows[static_cast<std::size_t>(i)] = i;
  for (idx i = 0; i < cfg.num_unique; ++i) {
    const idx j = i + static_cast<idx>(rng.uniform_int(
                          static_cast<std::uint64_t>(pool.rows() - i)));
    std::swap(rows[static_cast<std::size_t>(i)],
              rows[static_cast<std::size_t>(j)]);
  }
  s.unique_points = kernel::RealMatrix(cfg.num_unique, pool.cols());
  for (idx i = 0; i < cfg.num_unique; ++i)
    std::copy(pool.row(rows[static_cast<std::size_t>(i)]),
              pool.row(rows[static_cast<std::size_t>(i)]) + pool.cols(),
              s.unique_points.row(i));

  s.order = make_order(cfg, rng);
  s.arrival_us = make_arrivals(cfg);
  return s;
}

std::uint64_t scenario_digest(const Scenario& scenario) {
  // FNV-1a, seeded by the unique-point bits, then folded over order and
  // arrival bits — any byte-level divergence changes the digest.
  std::uint64_t h = feature_hash(
      scenario.unique_points.data(),
      static_cast<std::size_t>(scenario.unique_points.rows() *
                               scenario.unique_points.cols()));
  const auto mix = [&h](const void* bytes, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(bytes);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  for (idx row : scenario.order) {
    const std::uint64_t v = static_cast<std::uint64_t>(row);
    mix(&v, sizeof v);
  }
  for (double t : scenario.arrival_us) mix(&t, sizeof t);
  return h;
}

std::vector<ScenarioConfig> standard_scenarios(idx num_requests,
                                               idx num_unique,
                                               std::uint64_t seed) {
  std::vector<ScenarioConfig> suite;

  ScenarioConfig uniform;
  uniform.name = "uniform-steady";
  uniform.seed = seed;
  uniform.num_requests = num_requests;
  uniform.num_unique = num_unique;
  suite.push_back(uniform);

  ScenarioConfig zipf = uniform;
  zipf.name = "zipf-hotkey";
  zipf.seed = seed + 1;
  zipf.keys = KeyPattern::kZipf;
  zipf.zipf_exponent = 1.2;
  suite.push_back(zipf);

  ScenarioConfig dup = uniform;
  dup.name = "duplicate-heavy";
  dup.seed = seed + 2;
  dup.keys = KeyPattern::kDuplicateHeavy;
  dup.repeat_fraction = 0.6;
  suite.push_back(dup);

  ScenarioConfig burst = uniform;
  burst.name = "uniform-burst";
  burst.seed = seed + 3;
  burst.arrival = ArrivalPattern::kBurst;
  burst.burst_size = std::max<idx>(1, num_requests / 8);
  burst.burst_gap_us = 400;
  suite.push_back(burst);

  ScenarioConfig ramp = zipf;
  ramp.name = "zipf-ramp";
  ramp.seed = seed + 4;
  ramp.arrival = ArrivalPattern::kRamp;
  ramp.mean_gap_us = 200;
  ramp.ramp_factor = 8.0;
  suite.push_back(ramp);

  return suite;
}

}  // namespace qkmps::serve::workload
