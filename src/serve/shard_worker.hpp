#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "parallel/transport.hpp"
#include "serve/inference_engine.hpp"
#include "serve/shard_wire.hpp"

namespace qkmps::serve {

/// The shard side of the rank-sharded serving protocol, factored out of
/// the engine so the exact same loop serves both deployments: an
/// in-process rank of serve::RankShardedEngine (over CommTransport) and
/// the serving_rankd worker process (over SocketTransport). One loop
/// body means the socket mode cannot drift behaviourally from the
/// in-process mode the parity suites pin.

struct ShardWorkerOptions {
  /// Gather bound per batch (the engine's drain_max_batch resolution).
  std::size_t batch_limit = 32;
  /// Poll tick while idle-waiting for the first envelope of a batch: the
  /// worker stays reclaimable (a dead router surfaces as a transport
  /// error on the next tick) instead of blocking forever.
  std::chrono::microseconds idle_poll{100'000};
  /// Test hook: abandon the loop — without sending the kStopped ack —
  /// once this many requests have been scored, simulating a worker that
  /// crashes mid-service (the socket closes when the process exits).
  /// 0 disables.
  std::size_t die_after_requests = 0;
};

/// Runs the gather->predict->reply loop until a kShutdown envelope
/// arrives (acked with kStopped) or `die_after_requests` trips. Batching
/// is opportunistic exactly as in the rank body it replaces: block for
/// the first envelope, try_recv whatever is already queued up to
/// batch_limit, score once through the engine, reply per request. kDrain
/// and kStats are honoured after the in-hand batch (FIFO: their acks must
/// follow the batch's replies). Throws qkmps::Error if the link dies —
/// the caller owns what a dead router means (a worker process exits).
/// Returns true on a clean, kStopped-acked shutdown; false when the
/// die_after_requests hook ended the loop instead (so serving_rankd can
/// report which exit it took).
bool run_shard_worker(parallel::Transport& link, InferenceEngine& engine,
                      const ShardWorkerOptions& options = {});

/// Worker-side handshake: sends `hello`, waits for the router's verdict.
/// Throws qkmps::Error on timeout, version skew, or refusal (carrying the
/// router's reason).
void shard_handshake_client(parallel::Transport& link,
                            const ShardHello& hello,
                            std::chrono::microseconds timeout);

/// What the router requires of a connecting worker's hello. The optional
/// fields pin a *specific* expected worker — the elastic paths (respawn,
/// add_shard) spawn exactly one process and must refuse any other
/// straggler (a late connection from a superseded generation, a worker
/// claiming the wrong slot, or one spawned with a stale weight).
struct ShardAcceptPolicy {
  std::size_t num_shards = 0;
  std::int64_t num_features = 0;
  /// When set: the hello must claim exactly this shard slot.
  std::optional<std::uint64_t> require_shard;
  /// When set: the hello's spawn generation must match exactly.
  std::optional<std::uint64_t> require_generation;
  /// When set: the hello's ring weight must match exactly (the engine
  /// formats weights with full precision on the worker command line, so
  /// the round trip is bit-exact).
  std::optional<double> require_weight;
};

/// Router-side handshake: receives a hello on a freshly accepted
/// connection, validates it against `policy` (wire version, shard index
/// in range, model feature count, plus any pinned slot/generation/weight),
/// and replies with the verdict. Returns the validated hello; throws
/// qkmps::Error — after sending the refusal so the worker can die loudly
/// too — when validation fails or the hello never comes.
ShardHello shard_handshake_server(parallel::Transport& link,
                                  const ShardAcceptPolicy& policy,
                                  std::chrono::microseconds timeout);

/// Convenience overload: range/shape checks only (the fixed-fleet path).
ShardHello shard_handshake_server(parallel::Transport& link,
                                  std::size_t num_shards,
                                  std::int64_t num_features,
                                  std::chrono::microseconds timeout);

}  // namespace qkmps::serve
