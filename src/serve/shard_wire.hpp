#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "serve/inference_engine.hpp"

namespace qkmps::serve {

/// Wire protocol of the rank-distributed serving frontend. Everything the
/// router and the shard workers exchange travels as one of these two
/// message structs, and each struct has exactly one byte serialization
/// (encode/decode below) — the payload a parallel::Transport carries.
/// Over the in-process CommTransport the bytes ride a typed channel; over
/// SocketTransport the same bytes get a frame header on the wire
/// (parallel/socket_transport.hpp). Either way the router logic, the
/// worker loop, and the batching are identical — the transport
/// substitution DESIGN.md §1 promises.
///
/// Numbers are written with the util/binary_io.hpp primitives, so the
/// wire inherits its endianness caveat: native little-endian, not
/// portable to big-endian hosts.

/// Router -> shard. A request envelope carries the raw (pre-scaling)
/// feature vector, validated once at submit(); control kinds carry no
/// payload.
struct ShardEnvelope {
  enum class Kind : std::uint8_t {
    kRequest,   ///< score `features`, reply kPrediction with the same id
    kDrain,     ///< flush any gathered batch now (maintenance barrier)
    kShutdown,  ///< finish in-hand work, reply kStopped, exit the loop
    kStats,     ///< reply kStats with an EngineStats snapshot
  };
  Kind kind = Kind::kRequest;
  std::uint64_t id = 0;  ///< router-assigned, unique per engine incarnation
  std::vector<double> features;
  /// v3: the router-side trace id riding along so worker-side spans can
  /// be stitched into the request's cross-process timeline. 0 = untraced
  /// (and what a v2 envelope decodes to).
  std::uint64_t trace_id = 0;
};

/// Shard -> router.
struct ShardReply {
  enum class Kind : std::uint8_t {
    kPrediction,  ///< `prediction` is valid for request `id`
    kFailed,      ///< the batch containing `id` threw; `error` explains
    kDrained,     ///< ack of kDrain
    kStopped,     ///< ack of kShutdown; the shard has exited its loop
    kStats,       ///< `stats` is a point-in-time EngineStats snapshot
  };
  Kind kind = Kind::kPrediction;
  std::uint64_t id = 0;
  Prediction prediction;
  std::string error;
  EngineStats stats;  ///< meaningful for kStats replies only
  /// v3: echo of the request envelope's trace id (0 = untraced or v2
  /// peer) plus the worker-side spans for the batch that scored this
  /// request — start_ns relative to the worker's batch start; the router
  /// re-bases them under its wire span when stitching.
  std::uint64_t trace_id = 0;
  std::vector<obs::Span> spans;
};

/// Version of the *payload* schema (fields and their order), negotiated
/// at handshake. Independent of the frame-codec version, which covers
/// only the 20-byte header around each payload. v2 added the elastic-
/// fleet fields (ring weight + spawn generation) to the hello. v3
/// appended the tracing tail: trace_id on the envelope, trace_id + spans
/// on the reply. The v3 decoders still accept v2-length payloads (the
/// tail defaults to "untraced") so a mixed-version fleet degrades to
/// untraced requests instead of refusing to decode — pinned by
/// tests/test_shard_wire.cpp.
inline constexpr std::uint16_t kShardWireVersion = 3;

/// Worker -> router, first message after connect: identifies which shard
/// this process serves, what it believes the model shape is, and — since
/// v2 — which spawn generation and ring weight it was born with, so a
/// mis-spawned, stale (previous-generation), or mis-weighted worker
/// fails the handshake instead of scoring with the wrong bundle or
/// pulling the wrong share of load.
struct ShardHello {
  std::uint16_t wire_version = kShardWireVersion;
  std::uint64_t shard_index = 0;
  std::int64_t num_features = 0;
  /// Consistent-hash ring weight this worker was spawned to carry
  /// (proportional load for heterogeneous --threads budgets).
  double weight = 1.0;
  /// Spawn generation of this shard slot: 0 for the initial fleet,
  /// incremented by the engine for every respawn, so a worker from a
  /// superseded generation that connects late is refused.
  std::uint64_t generation = 0;
};

/// Router -> worker, handshake verdict. A refused worker exits instead
/// of serving; `error` says why (version skew, wrong shard, wrong model).
struct ShardWelcome {
  std::uint16_t wire_version = kShardWireVersion;
  bool accepted = false;
  std::string error;
};

/// Byte codecs. decode_* treat the payload as untrusted wire input:
/// unknown kind bytes, truncated payloads, hostile vector lengths (the
/// byte-budget read_vector overload bounds every allocation to the
/// payload size), and trailing garbage all throw qkmps::Error — never a
/// crash or a silently wrong message (tests/test_shard_wire.cpp).
std::vector<std::uint8_t> encode_envelope(const ShardEnvelope& envelope);
ShardEnvelope decode_envelope(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_reply(const ShardReply& reply);
ShardReply decode_reply(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_hello(const ShardHello& hello);
ShardHello decode_hello(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_welcome(const ShardWelcome& welcome);
ShardWelcome decode_welcome(const std::vector<std::uint8_t>& payload);

}  // namespace qkmps::serve
