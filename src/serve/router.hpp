#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace qkmps::serve {

/// Which key->shard assignment strategy a serving frontend uses. Both
/// strategies hash the raw feature bits (serve::feature_hash), so
/// bit-identical requests always colocate and per-shard cache locality
/// survives sharding; they differ in what happens when the shard set
/// changes size (see DESIGN.md, "Routing").
enum class RouterKind {
  /// `feature_hash(x) % N`. Perfectly balanced, zero state — but growing
  /// N -> N+1 reassigns ~N/(N+1) of all keys, cold-starting nearly every
  /// shard's StateCache and memo.
  kFeatureHashModulo,
  /// Consistent-hash ring with virtual nodes: each shard owns
  /// `virtual_nodes` points on a 64-bit ring and a key belongs to the
  /// first shard point at or clockwise of its hash. Growing N -> N+1
  /// moves only the ~1/(N+1) of keys the new shard's points capture;
  /// every other key keeps its shard, and its shard keeps its cache
  /// (tests/test_router.cpp pins both properties).
  kConsistentHash,
};

const char* to_string(RouterKind kind);

struct RouterConfig {
  RouterKind kind = RouterKind::kFeatureHashModulo;
  /// Ring points per shard (kConsistentHash only). More points tighten
  /// the load spread (relative imbalance ~ 1/sqrt(virtual_nodes)) at the
  /// cost of a larger binary-searched ring.
  std::size_t virtual_nodes = 64;
};

/// Stable key->shard assignment shared by serve::ShardedEngine (in-process
/// shards) and serve::RankShardedEngine (rank-distributed shards).
///
/// Thread safety: shard_for / shard_for_hash / num_shards are const and
/// safe to call concurrently from any number of threads. add_shard is a
/// topology mutation and must be externally serialized against lookups —
/// the owning engine only resizes while its router loop is stopped.
///
/// Invariants: shard_for_hash returns a value in [0, num_shards()) for
/// every 64-bit hash; the assignment is a pure function of (hash, current
/// topology) — no request history, no load feedback — so two routers
/// built the same way agree on every key (the property that lets a future
/// multi-process deployment route client-side).
class Router {
 public:
  virtual ~Router() = default;

  /// Shard owning `key_hash` (a serve::feature_hash value).
  virtual int shard_for_hash(std::uint64_t key_hash) const = 0;

  /// Grows the topology by one shard (new shard id = previous
  /// num_shards()). Not thread-safe against concurrent lookups.
  virtual void add_shard() = 0;

  virtual std::size_t num_shards() const = 0;
  virtual RouterKind kind() const = 0;

  /// Convenience: hashes the raw feature bits and dispatches.
  int shard_for(const std::vector<double>& features) const;
};

/// `hash % N` (the original ShardedEngine routing, now behind the Router
/// interface). add_shard() is supported but remaps almost every key.
class ModuloRouter final : public Router {
 public:
  explicit ModuloRouter(std::size_t num_shards);

  int shard_for_hash(std::uint64_t key_hash) const override;
  void add_shard() override { ++num_shards_; }
  std::size_t num_shards() const override { return num_shards_; }
  RouterKind kind() const override { return RouterKind::kFeatureHashModulo; }

 private:
  std::size_t num_shards_;
};

/// Consistent-hash ring with virtual nodes. Construction is deterministic:
/// a shard's ring points depend only on (shard id, replica index), so
/// ConsistentHashRouter(n+1) and ConsistentHashRouter(n) + add_shard()
/// produce identical assignments for every key.
class ConsistentHashRouter final : public Router {
 public:
  explicit ConsistentHashRouter(std::size_t num_shards,
                                std::size_t virtual_nodes = 64);

  int shard_for_hash(std::uint64_t key_hash) const override;
  void add_shard() override;
  std::size_t num_shards() const override { return num_shards_; }
  RouterKind kind() const override { return RouterKind::kConsistentHash; }
  std::size_t virtual_nodes() const { return virtual_nodes_; }

 private:
  struct RingPoint {
    std::uint64_t point;
    int shard;
  };

  void insert_shard_points(int shard);

  std::size_t num_shards_;
  std::size_t virtual_nodes_;
  std::vector<RingPoint> ring_;  ///< sorted by (point, shard)
};

/// Factory used by the engine configs.
std::unique_ptr<Router> make_router(const RouterConfig& config,
                                    std::size_t num_shards);

}  // namespace qkmps::serve
