#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace qkmps::serve {

/// Which key->shard assignment strategy a serving frontend uses. Both
/// strategies hash the raw feature bits (serve::feature_hash), so
/// bit-identical requests always colocate and per-shard cache locality
/// survives sharding; they differ in what happens when the shard set
/// changes size (see DESIGN.md, "Routing").
enum class RouterKind {
  /// `feature_hash(x) % N`. Perfectly balanced, zero state — but growing
  /// N -> N+1 reassigns ~N/(N+1) of all keys, cold-starting nearly every
  /// shard's StateCache and memo.
  kFeatureHashModulo,
  /// Consistent-hash ring with virtual nodes: each shard owns
  /// `virtual_nodes` points on a 64-bit ring and a key belongs to the
  /// first shard point at or clockwise of its hash. Growing N -> N+1
  /// moves only the ~1/(N+1) of keys the new shard's points capture;
  /// every other key keeps its shard, and its shard keeps its cache
  /// (tests/test_router.cpp pins both properties).
  kConsistentHash,
};

const char* to_string(RouterKind kind);

struct RouterConfig {
  RouterKind kind = RouterKind::kFeatureHashModulo;
  /// Ring points per shard (kConsistentHash only). More points tighten
  /// the load spread (relative imbalance ~ 1/sqrt(virtual_nodes)) at the
  /// cost of a larger binary-searched ring.
  std::size_t virtual_nodes = 64;
};

/// Stable key->shard assignment shared by serve::ShardedEngine (in-process
/// shards) and serve::RankShardedEngine (rank-distributed shards).
///
/// Thread safety: shard_for / shard_for_hash / num_shards are const and
/// safe to call concurrently from any number of threads. add_shard and
/// remove_shard are topology mutations and must be externally serialized
/// against lookups — the owning engine only resizes under its topology
/// lock (or with its router loop stopped).
///
/// Invariants: shard_for_hash returns a value in [0, num_shards()) that
/// names a non-removed shard, for every 64-bit hash; the assignment is a
/// pure function of (hash, current topology) — no request history, no
/// load feedback — so two routers built the same way agree on every key
/// (the property that lets a future multi-process deployment route
/// client-side). Shard ids are never reused: remove_shard(i) retires id
/// `i` (its keys hand off to the survivors) but num_shards() keeps
/// counting the retired slot so later shards keep their ids.
class Router {
 public:
  virtual ~Router() = default;

  /// Shard owning `key_hash` (a serve::feature_hash value).
  virtual int shard_for_hash(std::uint64_t key_hash) const = 0;

  /// Grows the topology by one shard (new shard id = previous
  /// num_shards()) carrying `weight` (see ConsistentHashRouter). Not
  /// thread-safe against concurrent lookups.
  virtual void add_shard(double weight) = 0;
  void add_shard() { add_shard(1.0); }

  /// Retires shard `shard`: its keys hand off to the remaining shards
  /// and shard_for_hash never returns it again. Throws qkmps::Error when
  /// the strategy cannot express the removal (ModuloRouter can only
  /// shrink from the top) or when it would leave zero shards.
  virtual void remove_shard(int shard) = 0;

  virtual std::size_t num_shards() const = 0;
  virtual RouterKind kind() const = 0;

  /// Convenience: hashes the raw feature bits and dispatches.
  int shard_for(const std::vector<double>& features) const;
};

/// `hash % N` (the original ShardedEngine routing, now behind the Router
/// interface). add_shard() is supported but remaps almost every key;
/// weights other than 1.0 and mid-topology removal are unsupported (the
/// modulo map cannot skip an id or skew its spread) and throw.
class ModuloRouter final : public Router {
 public:
  explicit ModuloRouter(std::size_t num_shards);

  int shard_for_hash(std::uint64_t key_hash) const override;
  using Router::add_shard;
  void add_shard(double weight) override;
  void remove_shard(int shard) override;
  std::size_t num_shards() const override { return num_shards_; }
  RouterKind kind() const override { return RouterKind::kFeatureHashModulo; }

 private:
  std::size_t num_shards_;
};

/// Consistent-hash ring with weighted virtual nodes. Construction is
/// deterministic: a shard's ring points depend only on (shard id, replica
/// index), so ConsistentHashRouter(n+1) and ConsistentHashRouter(n) +
/// add_shard() produce identical assignments for every key — and removing
/// a shard only erases its own points, so its keys hand off to the
/// clockwise survivors without moving anyone else's.
///
/// Weights size heterogeneous shards: a shard of weight w owns
/// max(1, round(w * virtual_nodes)) ring points, so its expected share of
/// keys is proportional to w (a 2x-threads worker pulls ~2x the load —
/// tests/test_router.cpp pins the spread).
class ConsistentHashRouter final : public Router {
 public:
  explicit ConsistentHashRouter(std::size_t num_shards,
                                std::size_t virtual_nodes = 64);
  /// One shard per weight entry; weights[i] is shard i's ring weight.
  ConsistentHashRouter(const std::vector<double>& weights,
                       std::size_t virtual_nodes);

  int shard_for_hash(std::uint64_t key_hash) const override;
  using Router::add_shard;
  void add_shard(double weight) override;
  void remove_shard(int shard) override;
  std::size_t num_shards() const override { return num_shards_; }
  RouterKind kind() const override { return RouterKind::kConsistentHash; }
  std::size_t virtual_nodes() const { return virtual_nodes_; }
  /// Ring points shard `shard` currently owns (0 once removed).
  std::size_t points_of(int shard) const;

 private:
  struct RingPoint {
    std::uint64_t point;
    int shard;
  };

  void insert_shard_points(int shard, double weight);

  std::size_t num_shards_;
  std::size_t virtual_nodes_;
  std::vector<RingPoint> ring_;  ///< sorted by (point, shard)
};

/// Factories used by the engine configs: uniform weights, or one weight
/// per shard (kFeatureHashModulo rejects non-uniform weights).
std::unique_ptr<Router> make_router(const RouterConfig& config,
                                    std::size_t num_shards);
std::unique_ptr<Router> make_router(const RouterConfig& config,
                                    const std::vector<double>& weights);

}  // namespace qkmps::serve
