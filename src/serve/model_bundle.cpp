#include "serve/model_bundle.hpp"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "mps/serialization.hpp"
#include "util/binary_io.hpp"
#include "util/error.hpp"

namespace qkmps::serve {

namespace {

using io::read_pod;
using io::read_vector;
using io::write_pod;
using io::write_vector;

constexpr std::uint32_t kBundleMagic = 0x51'4B'42'4C;  // "QKBL"
constexpr std::uint32_t kBundleVersion = 1;

std::string manifest_path(const std::string& dir) { return dir + "/bundle.qkb"; }

std::string state_path(const std::string& dir, std::size_t i) {
  return dir + "/sv_" + std::to_string(i) + ".mps";
}

}  // namespace

ModelBundle make_bundle(const kernel::QuantumKernelConfig& config,
                        const data::FeatureScaler& scaler,
                        const svm::SvcModel& model,
                        const std::vector<mps::Mps>& train_states) {
  QKMPS_CHECK(scaler.num_features() == config.ansatz.num_features);
  ModelBundle bundle;
  bundle.config = config;
  bundle.scaler = scaler;
  const svm::CompactSvc compact =
      svm::compact_support_vectors(model, train_states, &bundle.sv_states);
  bundle.model = std::move(compact.model);
  bundle.sv_indices = std::move(compact.sv_indices);
  for (const mps::Mps& psi : bundle.sv_states)
    QKMPS_CHECK(psi.num_sites() == config.ansatz.num_features);
  return bundle;
}

void save_bundle(const ModelBundle& bundle, const std::string& dir) {
  const auto n_sv = bundle.sv_states.size();
  QKMPS_CHECK(bundle.model.alpha.size() == n_sv &&
              bundle.model.y.size() == n_sv && bundle.sv_indices.size() == n_sv);
  // The directory IS the artifact; it gets replaced wholesale — but
  // refuse up front to clobber a directory that is neither a bundle nor
  // empty, before any staging I/O happens.
  if (std::filesystem::exists(dir))
    QKMPS_CHECK_MSG(std::filesystem::exists(manifest_path(dir)) ||
                        std::filesystem::is_empty(dir),
                    "refusing to replace non-bundle directory " << dir);

  // Stage into a sibling temp directory and swap it in. A save that dies
  // partway leaves a stale .tmp or (in the tiny window between removal
  // and rename) no bundle at all — both loudly detectable — and never a
  // manifest paired with mismatched state files.
  const std::string tmp = dir + ".tmp";
  std::filesystem::remove_all(tmp);
  std::filesystem::create_directories(tmp);
  for (std::size_t i = 0; i < n_sv; ++i)
    mps::save_mps(bundle.sv_states[i], state_path(tmp, i));

  std::ofstream os(manifest_path(tmp), std::ios::binary);
  QKMPS_CHECK_MSG(os.good(), "cannot open " << manifest_path(tmp));
  write_pod(os, kBundleMagic);
  write_pod(os, kBundleVersion);

  // Feature-map ansatz + simulator configuration.
  const circuit::AnsatzParams& a = bundle.config.ansatz;
  write_pod(os, static_cast<std::int64_t>(a.num_features));
  write_pod(os, static_cast<std::int64_t>(a.layers));
  write_pod(os, static_cast<std::int64_t>(a.distance));
  write_pod(os, a.gamma);
  const mps::SimulatorConfig& sim = bundle.config.sim;
  write_pod(os, static_cast<std::int32_t>(sim.policy));
  write_pod(os, sim.truncation.max_discarded_weight);
  write_pod(os, static_cast<std::int64_t>(sim.truncation.max_bond));

  // Fitted scaler statistics.
  write_pod(os, bundle.scaler.lo());
  write_pod(os, bundle.scaler.hi());
  write_vector(os, bundle.scaler.mean());
  write_vector(os, bundle.scaler.stddev());
  write_vector(os, bundle.scaler.min_z());
  write_vector(os, bundle.scaler.max_z());

  // Compacted SVC.
  write_vector(os, bundle.model.alpha);
  std::vector<std::int32_t> y32(bundle.model.y.begin(), bundle.model.y.end());
  write_vector(os, y32);
  write_pod(os, bundle.model.bias);
  write_pod(os, static_cast<std::int64_t>(bundle.model.iterations));
  write_pod(os, static_cast<std::uint8_t>(bundle.model.converged ? 1 : 0));
  std::vector<std::int64_t> sv64(bundle.sv_indices.begin(),
                                 bundle.sv_indices.end());
  write_vector(os, sv64);

  write_pod(os, static_cast<std::int64_t>(n_sv));
  os.close();  // flush before the swap; close() sets failbit on error
  QKMPS_CHECK_MSG(os.good(), "bundle manifest write failure");

  std::filesystem::remove_all(dir);
  std::filesystem::rename(tmp, dir);
}

ModelBundle load_bundle(const std::string& dir) {
  std::ifstream is(manifest_path(dir), std::ios::binary);
  QKMPS_CHECK_MSG(is.good(), "cannot open " << manifest_path(dir));
  QKMPS_CHECK_MSG(read_pod<std::uint32_t>(is) == kBundleMagic,
                  "not a model bundle manifest");
  QKMPS_CHECK_MSG(read_pod<std::uint32_t>(is) == kBundleVersion,
                  "unsupported bundle version");

  ModelBundle bundle;
  circuit::AnsatzParams& a = bundle.config.ansatz;
  a.num_features = static_cast<idx>(read_pod<std::int64_t>(is));
  a.layers = static_cast<idx>(read_pod<std::int64_t>(is));
  a.distance = static_cast<idx>(read_pod<std::int64_t>(is));
  a.gamma = read_pod<double>(is);
  QKMPS_CHECK(a.num_features >= 1 && a.layers >= 1 && a.distance >= 1);
  QKMPS_CHECK_MSG(std::isfinite(a.gamma), "corrupt gamma in manifest");

  const auto policy = read_pod<std::int32_t>(is);
  QKMPS_CHECK_MSG(policy == 0 || policy == 1, "unknown execution policy");
  bundle.config.sim.policy = static_cast<linalg::ExecPolicy>(policy);
  bundle.config.sim.truncation.max_discarded_weight = read_pod<double>(is);
  QKMPS_CHECK_MSG(
      std::isfinite(bundle.config.sim.truncation.max_discarded_weight) &&
          bundle.config.sim.truncation.max_discarded_weight >= 0.0,
      "corrupt truncation budget in manifest");
  bundle.config.sim.truncation.max_bond =
      static_cast<idx>(read_pod<std::int64_t>(is));
  QKMPS_CHECK_MSG(bundle.config.sim.truncation.max_bond >= 0,
                  "corrupt bond cap in manifest");

  const double lo = read_pod<double>(is);
  const double hi = read_pod<double>(is);
  auto mean = read_vector<double>(is);
  auto stddev = read_vector<double>(is);
  auto min_z = read_vector<double>(is);
  auto max_z = read_vector<double>(is);
  bundle.scaler =
      data::FeatureScaler::restore(std::move(mean), std::move(stddev),
                                   std::move(min_z), std::move(max_z), lo, hi);
  QKMPS_CHECK_MSG(bundle.scaler.num_features() == a.num_features,
                  "scaler/ansatz feature-count mismatch");

  bundle.model.alpha = read_vector<double>(is);
  const auto y32 = read_vector<std::int32_t>(is);
  bundle.model.y.assign(y32.begin(), y32.end());
  bundle.model.bias = read_pod<double>(is);
  QKMPS_CHECK_MSG(std::isfinite(bundle.model.bias), "corrupt bias in manifest");
  bundle.model.iterations = read_pod<std::int64_t>(is);
  bundle.model.converged = read_pod<std::uint8_t>(is) != 0;
  const auto sv64 = read_vector<std::int64_t>(is);
  bundle.sv_indices.assign(sv64.begin(), sv64.end());

  const auto n_sv = read_pod<std::int64_t>(is);
  QKMPS_CHECK_MSG(n_sv >= 0 &&
                      bundle.model.alpha.size() ==
                          static_cast<std::size_t>(n_sv) &&
                      bundle.model.y.size() == static_cast<std::size_t>(n_sv) &&
                      bundle.sv_indices.size() == static_cast<std::size_t>(n_sv),
                  "inconsistent support-vector counts in manifest");
  for (int label : bundle.model.y)
    QKMPS_CHECK_MSG(label == 1 || label == -1, "corrupt label in manifest");
  // A compacted model has strictly positive, finite dual coefficients by
  // construction (compact_support_vectors drops zero-alpha entries).
  for (double a : bundle.model.alpha)
    QKMPS_CHECK_MSG(std::isfinite(a) && a > 0.0,
                    "corrupt dual coefficient in manifest");
  for (std::size_t s = 0; s < bundle.sv_indices.size(); ++s)
    QKMPS_CHECK_MSG(bundle.sv_indices[s] >= 0 &&
                        (s == 0 || bundle.sv_indices[s] > bundle.sv_indices[s - 1]),
                    "corrupt support-vector index map in manifest");

  bundle.sv_states.reserve(static_cast<std::size_t>(n_sv));
  for (std::size_t i = 0; i < static_cast<std::size_t>(n_sv); ++i) {
    bundle.sv_states.push_back(mps::load_mps(state_path(dir, i)));
    QKMPS_CHECK_MSG(bundle.sv_states.back().num_sites() == a.num_features,
                    "support-vector state " << i << " has wrong qubit count");
  }
  return bundle;
}

}  // namespace qkmps::serve
