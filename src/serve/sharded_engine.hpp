#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.hpp"

#include "obs/trace.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_bundle.hpp"
#include "serve/router.hpp"

namespace qkmps::serve {

/// What the admission queue does when a request arrives and the routed
/// shard's pending queue is already at capacity.
enum class AdmissionPolicy {
  /// The *new* request is refused immediately: its future resolves with
  /// ServeStatus::kRejected (no exception — rejection is an expected
  /// overload outcome, not an error).
  kRejectNew,
  /// submit() blocks until the queue has space or block_deadline elapses;
  /// on timeout the new request resolves kRejected. Upstream callers feel
  /// the backpressure as latency instead of errors.
  kBlockWithDeadline,
  /// The *oldest* pending request is evicted (its future resolves
  /// ServeStatus::kShed) and the new one is admitted — freshest-first
  /// semantics for feeds where stale scores lose their value (a fraud
  /// decision after the transaction cleared helps nobody).
  kShedOldest,
};

/// Outcome of a routed request. Exactly one of the three states; every
/// future issued by ShardedEngine::submit resolves with one of them (or
/// with the exception that killed its shard batch) — futures are never
/// dropped, including on shutdown with queued work.
enum class ServeStatus {
  kServed = 0,  ///< admitted, drained, scored; `prediction` is valid
  kRejected,    ///< refused at admission (kRejectNew or block timeout)
  kShed,        ///< admitted, then evicted by kShedOldest before draining
};

const char* to_string(ServeStatus status);

/// Per-shard simulation/kernel lane counts shared by the sharded
/// frontends. requested == 0 partitions the hardware threads across the
/// shards via parallel::split_sizes (N shards each draining through a
/// full-width pool would just contend with each other; a plain total/N
/// would drop the remainder lanes). Every shard gets at least one lane.
std::vector<std::size_t> shard_thread_lanes(std::size_t requested,
                                            std::size_t num_shards);

/// Latency-measurement primitive of the serving frontends.
inline double seconds_between(std::chrono::steady_clock::time_point from,
                              std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

struct RoutedPrediction {
  ServeStatus status = ServeStatus::kServed;
  int shard = -1;           ///< which shard the feature-key hash routed to
  Prediction prediction;    ///< valid only when status == kServed
  double queue_seconds = 0.0;  ///< admission -> drain start (0 if rejected)
  double total_seconds = 0.0;  ///< admission -> future fulfilment
  /// Why a request was shed without being scored — set by the
  /// rank-sharded frontend when a shard worker died (socket transport);
  /// empty for load-shedding and every other status.
  std::string error;
  /// The request's stitched trace (obs/trace.hpp): router-side spans
  /// plus — over the rank-sharded socket transport — the worker-side
  /// spans shipped back in the reply, re-based onto the router timeline.
  /// trace.trace_id == 0 for rejected requests (never routed).
  obs::TraceSummary trace;
};

struct ShardedEngineConfig {
  std::size_t num_shards = 2;
  /// Per-shard engine knobs. num_threads == 0 divides the hardware
  /// threads evenly across shards (at least 1 each) instead of giving
  /// every shard a full-width pool.
  EngineConfig engine;
  /// Key->shard assignment (see router.hpp and DESIGN.md). The default
  /// modulo router reproduces the original feature_hash % N routing
  /// bit-for-bit; kConsistentHash keeps assignments stable under shard-set
  /// growth (relevant when snapshotting/restoring across topologies).
  RouterConfig router;
  std::size_t admission_capacity = 256;  ///< pending bound, per shard
  AdmissionPolicy policy = AdmissionPolicy::kRejectNew;
  std::chrono::microseconds block_deadline{5000};  ///< kBlockWithDeadline
  std::size_t drain_max_batch = 0;   ///< per drain cycle; 0 = engine.max_batch
  std::size_t latency_window = 2048;  ///< drain-latency samples kept per shard
};

/// Per-shard counter snapshot. Invariants (modulo in-flight snapshots):
/// submitted == admitted + rejected, and admitted == completed + shed +
/// queue_depth once draining settles — a shed request was admitted first,
/// then evicted before it could drain.
struct ShardStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;           ///< drain cycles executed
  std::uint64_t max_queue_depth = 0;   ///< high-water mark of pending
  std::size_t queue_depth = 0;         ///< instantaneous pending count
  double p50_drain_ms = 0.0;  ///< admission->fulfilment, served requests
  double p99_drain_ms = 0.0;
  EngineStats engine;
};

/// Aggregate across shards; quantiles are pooled over every shard's
/// retained latency samples, counters are sums.
struct ShardedStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::size_t queue_depth = 0;
  double p50_drain_ms = 0.0;
  double p99_drain_ms = 0.0;
  std::vector<ShardStats> shards;
};

/// Sharded serving frontend: N independent InferenceEngine shards behind
/// per-shard bounded admission queues.
///
///   submit(x) ── Router(feature_hash(x)) ──► [admission queue] ─► drainer ─► shard engine
///
/// Routing hashes the raw feature bits through the configured Router
/// (modulo by default, consistent-hash optionally — see router.hpp), so
/// bit-identical requests always land on the same shard — cache locality
/// (StateCache and decision-value memo are per shard) survives sharding.
/// Each shard owns a drainer thread that pops up to drain_max_batch
/// pending requests and scores them through its engine's predict_batch,
/// so micro-batching emerges under load exactly as in the single-engine
/// path. All shards share one resident ModelBundle (shared_ptr; the
/// support-vector states are not duplicated). The shard set is fixed for
/// the engine's lifetime; serve::RankShardedEngine is the resizable,
/// transport-based sibling (see DESIGN.md for the topology comparison).
///
/// Thread safety: submit(), shard_for(), stats(), pause_draining(), and
/// resume_draining() are safe to call concurrently from any number of
/// threads for the whole lifetime of the engine; the only caller-side
/// ordering requirement is the usual one that no call may race the
/// destructor.
///
/// Determinism contract: routing, admission, and shard choice are
/// scheduling decisions only. A served request's prediction is
/// bitwise-identical to the sequential simulate_states + decision_values
/// pipeline regardless of shard count, admission policy, queue pressure,
/// or arrival order (tests/test_sharded_engine.cpp pins the metamorphic
/// relation across workload scenarios x shard counts x policies).
///
/// Shutdown contract: the destructor stops admission, waits out any
/// submitter still inside submit() (a kBlockWithDeadline waiter is woken
/// into a rejection rather than left blocked on freed state), then
/// drains every already-admitted request (even while paused) before
/// joining — no future is ever dropped and destruction with queued work
/// cannot deadlock. submit() entered after stop throws.
class ShardedEngine {
 public:
  explicit ShardedEngine(ModelBundle bundle, ShardedEngineConfig config = {});
  ShardedEngine(std::shared_ptr<const ModelBundle> bundle,
                ShardedEngineConfig config);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Routes, applies the admission policy, and returns a future that
  /// always resolves (served, rejected, or shed). Throws immediately on a
  /// malformed feature vector — admission statuses are for load, not for
  /// bad input.
  std::future<RoutedPrediction> submit(std::vector<double> features);

  /// The shard `features` routes to (pure function of the feature bits).
  int shard_for(const std::vector<double>& features) const;

  /// Operational drain control: while paused, requests are admitted (and
  /// policies enforced) but no batches start, so queues fill
  /// deterministically — used by maintenance windows and by the
  /// admission-control tests. Destruction drains regardless of pause.
  void pause_draining();
  void resume_draining();

  ShardedStats stats() const;
  std::size_t num_shards() const { return shards_.size(); }
  const ShardedEngineConfig& config() const { return config_; }
  const ModelBundle& bundle() const { return *bundle_; }

 private:
  struct Pending {
    std::vector<double> features;
    std::promise<RoutedPrediction> promise;
    std::chrono::steady_clock::time_point submitted;
    /// Begun at submit() (epoch == submitted); the drainer appends the
    /// admission-wait and engine-stage spans and finishes it into
    /// RoutedPrediction::trace.
    obs::TraceContext trace;
  };

  struct Shard {
    std::unique_ptr<InferenceEngine> engine;

    util::Mutex mu;  ///< guards pending, stop, paused, latencies
    util::CondVar cv_work;   ///< drainer wakeups
    util::CondVar cv_space;  ///< blocked submitters (kBlock...)
    std::deque<Pending> pending QKMPS_GUARDED_BY(mu);
    bool stop QKMPS_GUARDED_BY(mu) = false;
    bool paused QKMPS_GUARDED_BY(mu) = false;
    /// submit() calls currently inside this shard (possibly blocked in
    /// kBlockWithDeadline). The destructor waits for this to reach zero
    /// before freeing the shard, so a submitter woken by stop never
    /// touches freed memory.
    int active_submits QKMPS_GUARDED_BY(mu) = 0;
    /// Ring of served total_seconds.
    std::vector<double> latencies QKMPS_GUARDED_BY(mu);
    std::size_t latency_next QKMPS_GUARDED_BY(mu) = 0;

    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> max_queue_depth{0};

    std::thread drainer;
  };

  void drain_loop(Shard& shard, int shard_index);
  std::size_t drain_batch_limit() const;

  const std::shared_ptr<const ModelBundle> bundle_;
  const ShardedEngineConfig config_;
  const std::unique_ptr<Router> router_;  ///< immutable topology: N is fixed
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qkmps::serve
