#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mps/mps.hpp"

namespace qkmps::serve {

/// Hit/miss/eviction counters; the bench reports hit_rate() alongside
/// throughput because the two move together on repeated-query workloads.
/// A "miss" is strictly a failed cache lookup: duplicates of an uncached
/// key within one engine batch each count as misses even though in-batch
/// dedup simulates them only once (EngineStats::circuits_simulated is the
/// exact simulation count).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Thread-safe bounded LRU cache of simulated MPS, keyed by the bit
/// pattern of the scaled feature vector (see feature_key.hpp). In the
/// paper's cost model a classification is one circuit simulation plus
/// #SV inner products; a hit removes the simulation entirely, which is
/// the dominant term at production bond dimensions. States are handed out
/// as shared_ptr<const Mps> so an entry can be evicted while an in-flight
/// batch still computes kernels against it.
///
/// capacity == 0 disables caching: find() always misses and insert()
/// stores nothing (it still wraps the state for uniform call sites).
class StateCache {
 public:
  explicit StateCache(std::size_t capacity) : capacity_(capacity) {}

  StateCache(const StateCache&) = delete;
  StateCache& operator=(const StateCache&) = delete;

  /// Returns the cached state for `key` (marking it most-recently-used)
  /// or nullptr on a miss. The overload taking `hash` lets hot callers
  /// that already computed feature_hash(key) skip re-hashing (and keeps
  /// the hashing outside the cache lock).
  std::shared_ptr<const mps::Mps> find(const std::vector<double>& key);
  std::shared_ptr<const mps::Mps> find(const std::vector<double>& key,
                                       std::uint64_t hash);

  /// Inserts `state` under `key`, evicting least-recently-used entries
  /// beyond capacity. If the key is already present (e.g. two concurrent
  /// misses on the same point) the existing entry wins and is returned.
  std::shared_ptr<const mps::Mps> insert(const std::vector<double>& key,
                                         std::uint64_t hash,
                                         std::shared_ptr<const mps::Mps> state);
  std::shared_ptr<const mps::Mps> insert(
      const std::vector<double>& key, std::shared_ptr<const mps::Mps> state);
  std::shared_ptr<const mps::Mps> insert(const std::vector<double>& key,
                                         mps::Mps state);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  CacheStats stats() const;
  void clear();

 private:
  struct Entry {
    std::vector<double> key;
    std::uint64_t hash = 0;  ///< feature_hash(key), kept so eviction
                             ///< never re-hashes inside the lock
    std::shared_ptr<const mps::Mps> state;
  };
  using LruList = std::list<Entry>;

  /// Looks up `key` in index_; lru_.end() if absent. Caller holds mu_.
  LruList::iterator locate(std::uint64_t hash, const std::vector<double>& key);
  void evict_overflow();  ///< caller holds mu_

  const std::size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recently used
  std::unordered_multimap<std::uint64_t, LruList::iterator> index_;
  CacheStats stats_;
};

}  // namespace qkmps::serve
