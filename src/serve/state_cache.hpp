#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mps/mps.hpp"
#include "serve/lru_map.hpp"

namespace qkmps::serve {

/// Hit/miss/eviction counters; the bench reports hit_rate() alongside
/// throughput because the two move together on repeated-query workloads.
/// A "miss" is strictly a failed cache lookup: duplicates of an uncached
/// key within one engine batch each count as misses even though in-batch
/// dedup simulates them only once (EngineStats::circuits_simulated is the
/// exact simulation count). Snapshot semantics: see LruStats.
using CacheStats = LruStats;

/// Thread-safe bounded LRU cache of simulated MPS, keyed by the bit
/// pattern of the scaled feature vector (an LruMap instance — see
/// lru_map.hpp / feature_key.hpp). In the paper's cost model a
/// classification is one circuit simulation plus #SV inner products; a
/// hit removes the simulation entirely, which is the dominant term at
/// production bond dimensions. States are handed out as
/// shared_ptr<const Mps> so an entry can be evicted while an in-flight
/// batch still computes kernels against it.
///
/// capacity == 0 disables caching: find() always misses and insert()
/// stores nothing (it still wraps the state for uniform call sites).
class StateCache {
 public:
  explicit StateCache(std::size_t capacity) : map_(capacity) {}

  StateCache(const StateCache&) = delete;
  StateCache& operator=(const StateCache&) = delete;

  /// Returns the cached state for `key` (marking it most-recently-used)
  /// or nullptr on a miss. The overload taking `hash` lets hot callers
  /// that already computed feature_hash(key) skip re-hashing (and keeps
  /// the hashing outside the cache lock).
  std::shared_ptr<const mps::Mps> find(const std::vector<double>& key);
  std::shared_ptr<const mps::Mps> find(const std::vector<double>& key,
                                       std::uint64_t hash);

  /// Inserts `state` under `key`, evicting least-recently-used entries
  /// beyond capacity. If the key is already present (e.g. two concurrent
  /// misses on the same point) the existing entry wins and is returned.
  std::shared_ptr<const mps::Mps> insert(const std::vector<double>& key,
                                         std::uint64_t hash,
                                         std::shared_ptr<const mps::Mps> state);
  std::shared_ptr<const mps::Mps> insert(
      const std::vector<double>& key, std::shared_ptr<const mps::Mps> state);
  std::shared_ptr<const mps::Mps> insert(const std::vector<double>& key,
                                         mps::Mps state);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return map_.capacity(); }
  /// Lock-free snapshot of the counters (safe during concurrent
  /// find/insert traffic).
  CacheStats stats() const { return map_.stats(); }
  void clear() { map_.clear(); }

 private:
  LruMap<std::shared_ptr<const mps::Mps>> map_;
};

}  // namespace qkmps::serve
