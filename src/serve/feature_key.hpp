#pragma once

#include <cstdint>
#include <vector>

namespace qkmps::serve {

/// Cache keys for the serving layer. A request is identified by the exact
/// bit pattern of its (scaled) feature vector: hashing and equality both
/// operate on the raw little-endian bytes, so two requests collide in the
/// cache only when they would produce the identical feature-map circuit —
/// the condition under which reusing a simulated MPS is lossless.

/// FNV-1a over the raw bytes of `v[0..n)`.
std::uint64_t feature_hash(const double* v, std::size_t n);
std::uint64_t feature_hash(const std::vector<double>& v);

/// Bitwise equality (memcmp), consistent with feature_hash. Stricter than
/// operator== on doubles (-0.0 != +0.0 here); a false negative only costs
/// a redundant simulation, never a wrong answer.
bool feature_bits_equal(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace qkmps::serve
