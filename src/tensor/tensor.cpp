#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace qkmps::tensor {

namespace {
idx shape_product(const std::vector<idx>& shape) {
  idx p = 1;
  for (idx d : shape) {
    QKMPS_CHECK(d >= 0);
    p *= d;
  }
  return p;
}
}  // namespace

Tensor::Tensor(std::vector<idx> shape)
    : shape_(std::move(shape)),
      a_(static_cast<std::size_t>(shape_product(shape_))) {
  compute_strides();
}

void Tensor::compute_strides() {
  strides_.assign(shape_.size(), 1);
  for (idx i = static_cast<idx>(shape_.size()) - 2; i >= 0; --i)
    strides_[static_cast<std::size_t>(i)] =
        strides_[static_cast<std::size_t>(i + 1)] * shape_[static_cast<std::size_t>(i + 1)];
}

idx Tensor::flatten(std::initializer_list<idx> ix) const {
  QKMPS_CHECK(static_cast<idx>(ix.size()) == rank());
  idx flat = 0;
  idx axis = 0;
  for (idx v : ix) {
    QKMPS_CHECK(v >= 0 && v < shape_[static_cast<std::size_t>(axis)]);
    flat += v * strides_[static_cast<std::size_t>(axis)];
    ++axis;
  }
  return flat;
}

idx Tensor::flatten(const std::vector<idx>& ix) const {
  QKMPS_CHECK(static_cast<idx>(ix.size()) == rank());
  idx flat = 0;
  for (std::size_t axis = 0; axis < ix.size(); ++axis) {
    QKMPS_CHECK(ix[axis] >= 0 && ix[axis] < shape_[axis]);
    flat += ix[axis] * strides_[axis];
  }
  return flat;
}

Tensor Tensor::reshaped(std::vector<idx> new_shape) const& {
  QKMPS_CHECK(shape_product(new_shape) == size());
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.a_ = a_;
  out.compute_strides();
  return out;
}

Tensor Tensor::reshaped(std::vector<idx> new_shape) && {
  QKMPS_CHECK(shape_product(new_shape) == size());
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.a_ = std::move(a_);
  out.compute_strides();
  return out;
}

linalg::Matrix Tensor::as_matrix(idx left_axes) const {
  QKMPS_CHECK(left_axes >= 0 && left_axes <= rank());
  idx rows = 1, cols = 1;
  for (idx i = 0; i < left_axes; ++i) rows *= extent(i);
  for (idx i = left_axes; i < rank(); ++i) cols *= extent(i);
  linalg::Matrix m(rows, cols);
  std::copy(a_.begin(), a_.end(), m.data());
  return m;
}

Tensor Tensor::from_matrix(const linalg::Matrix& m, std::vector<idx> shape) {
  QKMPS_CHECK(shape_product(shape) == m.size());
  Tensor t(std::move(shape));
  std::copy(m.data(), m.data() + m.size(), t.data());
  return t;
}

Tensor Tensor::conj() const {
  Tensor out = *this;
  for (auto& v : out.a_) v = std::conj(v);
  return out;
}

double Tensor::norm() const {
  double s = 0.0;
  for (const auto& v : a_) s += std::norm(v);
  return std::sqrt(s);
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  QKMPS_CHECK(same_shape(a, b));
  double m = 0.0;
  for (idx k = 0; k < a.size(); ++k) m = std::max(m, std::abs(a[k] - b[k]));
  return m;
}

}  // namespace qkmps::tensor
