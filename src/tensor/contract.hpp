#pragma once

#include <vector>

#include "linalg/policy.hpp"
#include "tensor/tensor.hpp"

namespace qkmps::tensor {

/// Pairwise tensor contraction (Eq. 6 of the paper, generalized to several
/// common bonds): contracts axes_a[i] of `a` with axes_b[i] of `b`. The
/// output carries a's free axes (in order) followed by b's free axes.
/// Implemented as permute -> matricize -> GEMM -> reshape; the GEMM is
/// dispatched through the execution policy, which is where the
/// reference/accelerated backend split of DESIGN.md materializes.
Tensor contract(const Tensor& a, const std::vector<idx>& axes_a,
                const Tensor& b, const std::vector<idx>& axes_b,
                linalg::ExecPolicy policy = linalg::ExecPolicy::Reference);

}  // namespace qkmps::tensor
