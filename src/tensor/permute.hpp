#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace qkmps::tensor {

/// Returns the tensor with axes reordered so that output axis i is input
/// axis perm[i]. `perm` must be a permutation of 0..rank-1.
Tensor permuted(const Tensor& t, const std::vector<idx>& perm);

}  // namespace qkmps::tensor
