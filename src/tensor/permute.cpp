#include "tensor/permute.hpp"

#include <algorithm>

namespace qkmps::tensor {

Tensor permuted(const Tensor& t, const std::vector<idx>& perm) {
  const idx r = t.rank();
  QKMPS_CHECK(static_cast<idx>(perm.size()) == r);
  std::vector<bool> seen(static_cast<std::size_t>(r), false);
  for (idx p : perm) {
    QKMPS_CHECK(p >= 0 && p < r && !seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = true;
  }

  std::vector<idx> out_shape(static_cast<std::size_t>(r));
  for (idx i = 0; i < r; ++i)
    out_shape[static_cast<std::size_t>(i)] = t.extent(perm[static_cast<std::size_t>(i)]);
  Tensor out(out_shape);

  // Row-major strides of the input, rearranged so that walking the output
  // in order advances the matching input offset.
  std::vector<idx> in_strides(static_cast<std::size_t>(r), 1);
  for (idx i = r - 2; i >= 0; --i)
    in_strides[static_cast<std::size_t>(i)] =
        in_strides[static_cast<std::size_t>(i + 1)] * t.extent(i + 1);
  std::vector<idx> walk_strides(static_cast<std::size_t>(r));
  for (idx i = 0; i < r; ++i)
    walk_strides[static_cast<std::size_t>(i)] =
        in_strides[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];

  std::vector<idx> counter(static_cast<std::size_t>(r), 0);
  idx in_off = 0;
  const idx total = out.size();
  for (idx flat = 0; flat < total; ++flat) {
    out[flat] = t[in_off];
    // Odometer increment over the output multi-index.
    for (idx axis = r - 1; axis >= 0; --axis) {
      auto& c = counter[static_cast<std::size_t>(axis)];
      in_off += walk_strides[static_cast<std::size_t>(axis)];
      if (++c < out.extent(axis)) break;
      in_off -= c * walk_strides[static_cast<std::size_t>(axis)];
      c = 0;
    }
  }
  return out;
}

}  // namespace qkmps::tensor
