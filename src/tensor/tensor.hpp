#pragma once

#include <initializer_list>
#include <numeric>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace qkmps::tensor {

/// Dense N-dimensional complex tensor, row-major. Axes are called "bonds"
/// following the paper's terminology; the extent of an axis is its bond
/// dimension. Used for gates, statevectors and the generic contraction API;
/// the MPS hot path matricizes into linalg::Matrix (zero semantic change,
/// row-major grouping of leading axes is a free reshape).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<idx> shape);
  Tensor(std::initializer_list<idx> shape)
      : Tensor(std::vector<idx>(shape)) {}

  const std::vector<idx>& shape() const { return shape_; }
  idx rank() const { return static_cast<idx>(shape_.size()); }
  idx extent(idx axis) const { return shape_[static_cast<std::size_t>(axis)]; }
  idx size() const { return static_cast<idx>(a_.size()); }

  cplx* data() { return a_.data(); }
  const cplx* data() const { return a_.data(); }

  /// Linear (row-major) element access.
  cplx& operator[](idx flat) { return a_[static_cast<std::size_t>(flat)]; }
  const cplx& operator[](idx flat) const { return a_[static_cast<std::size_t>(flat)]; }

  /// Multi-index access; the index pack length must equal rank().
  template <typename... Ix>
  cplx& operator()(Ix... ix) {
    return a_[static_cast<std::size_t>(flatten({static_cast<idx>(ix)...}))];
  }
  template <typename... Ix>
  const cplx& operator()(Ix... ix) const {
    return a_[static_cast<std::size_t>(flatten({static_cast<idx>(ix)...}))];
  }

  /// Row-major flat offset of a multi-index.
  idx flatten(std::initializer_list<idx> ix) const;
  idx flatten(const std::vector<idx>& ix) const;

  /// Reinterpret the same data with a new shape (product of extents must
  /// match). This is the paper's Eq. (7) reshaping; row-major order makes
  /// the bijection the identity on flat offsets.
  Tensor reshaped(std::vector<idx> new_shape) const&;
  Tensor reshaped(std::vector<idx> new_shape) &&;

  /// Matricize: group the first `left_axes` axes as rows and the remainder
  /// as columns. A free reinterpretation for row-major data.
  linalg::Matrix as_matrix(idx left_axes) const;

  /// Build a tensor from a matrix with the given shape (row-major copy).
  static Tensor from_matrix(const linalg::Matrix& m, std::vector<idx> shape);

  /// Elementwise conjugate.
  Tensor conj() const;

  double norm() const;

  friend bool same_shape(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_;
  }

 private:
  std::vector<idx> shape_;
  std::vector<idx> strides_;
  std::vector<cplx> a_;

  void compute_strides();
};

/// Max elementwise |a - b| for tests.
double max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace qkmps::tensor
