#pragma once

#include <vector>

#include "linalg/svd.hpp"
#include "tensor/tensor.hpp"

namespace qkmps::tensor {

/// SVD split of a tensor across a bipartition of its axes: the first
/// `left_axes` axes go to U, the rest to V. Returns U with a trailing new
/// bond, the singular values, and Vh with a leading new bond — exactly the
/// decomposition step of two-qubit gate application (Fig. 1b).
struct TensorSvd {
  Tensor u;                ///< shape: left extents + [rank]
  std::vector<double> s;   ///< singular values, descending
  Tensor vh;               ///< shape: [rank] + right extents
  double discarded_weight = 0.0;  ///< sum of truncated s_i^2 (Eq. 8)
};

/// Full or truncated SVD split. If max_discarded_weight >= 0 the rank is
/// reduced until the discarded squared singular weight would exceed it
/// (Eq. 8); max_rank (if > 0) additionally caps the new bond dimension.
TensorSvd svd_split(const Tensor& t, idx left_axes,
                    double max_discarded_weight = -1.0, idx max_rank = 0);

/// QR split across the same bipartition: t = Q R with Q carrying the left
/// axes (orthonormal) and R the right axes. Used by canonicalization.
struct TensorQr {
  Tensor q;  ///< left extents + [rank]
  Tensor r;  ///< [rank] + right extents
};

TensorQr qr_split(const Tensor& t, idx left_axes);

}  // namespace qkmps::tensor
