#include "tensor/contract.hpp"

#include <algorithm>

#include "linalg/gemm.hpp"
#include "tensor/permute.hpp"

namespace qkmps::tensor {

Tensor contract(const Tensor& a, const std::vector<idx>& axes_a,
                const Tensor& b, const std::vector<idx>& axes_b,
                linalg::ExecPolicy policy) {
  QKMPS_CHECK(axes_a.size() == axes_b.size());
  for (std::size_t i = 0; i < axes_a.size(); ++i) {
    QKMPS_CHECK_MSG(
        a.extent(axes_a[i]) == b.extent(axes_b[i]),
        "contracted bond dimensions differ: " << a.extent(axes_a[i]) << " vs "
                                              << b.extent(axes_b[i]));
  }

  auto free_axes = [](const Tensor& t, const std::vector<idx>& contracted) {
    std::vector<idx> free;
    for (idx ax = 0; ax < t.rank(); ++ax)
      if (std::find(contracted.begin(), contracted.end(), ax) == contracted.end())
        free.push_back(ax);
    return free;
  };

  const std::vector<idx> free_a = free_axes(a, axes_a);
  const std::vector<idx> free_b = free_axes(b, axes_b);

  // a: free axes first, contracted last; b: contracted first, free last.
  std::vector<idx> perm_a = free_a;
  perm_a.insert(perm_a.end(), axes_a.begin(), axes_a.end());
  std::vector<idx> perm_b = axes_b;
  perm_b.insert(perm_b.end(), free_b.begin(), free_b.end());

  const Tensor ap = permuted(a, perm_a);
  const Tensor bp = permuted(b, perm_b);

  const linalg::Matrix am = ap.as_matrix(static_cast<idx>(free_a.size()));
  const linalg::Matrix bm = bp.as_matrix(static_cast<idx>(axes_b.size()));
  const linalg::Matrix cm = linalg::gemm(am, bm, policy);

  std::vector<idx> out_shape;
  out_shape.reserve(free_a.size() + free_b.size());
  for (idx ax : free_a) out_shape.push_back(a.extent(ax));
  for (idx ax : free_b) out_shape.push_back(b.extent(ax));
  if (out_shape.empty()) out_shape.push_back(1);  // scalar as rank-1 extent-1
  return Tensor::from_matrix(cm, std::move(out_shape));
}

}  // namespace qkmps::tensor
