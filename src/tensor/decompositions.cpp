#include "tensor/decompositions.hpp"

#include "linalg/qr.hpp"

namespace qkmps::tensor {

TensorSvd svd_split(const Tensor& t, idx left_axes, double max_discarded_weight,
                    idx max_rank) {
  QKMPS_CHECK(left_axes > 0 && left_axes < t.rank());
  const linalg::Matrix m = t.as_matrix(left_axes);
  linalg::SvdResult f = linalg::svd(m);

  TensorSvd out;
  if (max_discarded_weight >= 0.0 || max_rank > 0) {
    // A pure rank cap (weight budget < 0) still drops exactly-zero singular
    // values but nothing else, hence the 0.0 budget.
    const double budget = max_discarded_weight >= 0.0 ? max_discarded_weight : 0.0;
    const idx keep = linalg::truncation_rank(f.s, budget, max_rank);
    for (std::size_t i = static_cast<std::size_t>(keep); i < f.s.size(); ++i)
      out.discarded_weight += f.s[i] * f.s[i];
    linalg::truncate_svd(f, keep);
  }

  const idx rank = static_cast<idx>(f.s.size());
  std::vector<idx> left_shape, right_shape;
  for (idx i = 0; i < left_axes; ++i) left_shape.push_back(t.extent(i));
  left_shape.push_back(rank);
  right_shape.push_back(rank);
  for (idx i = left_axes; i < t.rank(); ++i) right_shape.push_back(t.extent(i));

  out.u = Tensor::from_matrix(f.u, std::move(left_shape));
  out.vh = Tensor::from_matrix(f.vh, std::move(right_shape));
  out.s = std::move(f.s);
  return out;
}

TensorQr qr_split(const Tensor& t, idx left_axes) {
  QKMPS_CHECK(left_axes > 0 && left_axes < t.rank());
  const linalg::Matrix m = t.as_matrix(left_axes);
  const linalg::QrResult f = linalg::qr_thin(m);

  const idx rank = f.q.cols();
  std::vector<idx> left_shape, right_shape;
  for (idx i = 0; i < left_axes; ++i) left_shape.push_back(t.extent(i));
  left_shape.push_back(rank);
  right_shape.push_back(rank);
  for (idx i = left_axes; i < t.rank(); ++i) right_shape.push_back(t.extent(i));

  TensorQr out;
  out.q = Tensor::from_matrix(f.q, std::move(left_shape));
  out.r = Tensor::from_matrix(f.r, std::move(right_shape));
  return out;
}

}  // namespace qkmps::tensor
