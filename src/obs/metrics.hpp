#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace qkmps {
class JsonWriter;
}

namespace qkmps::obs {

/// Metrics registry for the serving stack (DESIGN.md §8): named counters,
/// gauges, and log-scale latency histograms behind a process-wide
/// Registry. The design rule is lock-cheap hot paths: a metric handle is
/// looked up once (one mutex-protected map walk, typically at
/// construction time) and every subsequent update is a relaxed atomic —
/// safe to hammer from the engine's batcher, the router thread, and N
/// pool workers at once. Exposition (render_text / render_json) is a
/// point-in-time snapshot and never blocks updates.

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (queue depth, fleet size, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket log-scale latency histogram. Buckets span
/// [kLowest, kLowest * kGrowth^kBuckets) — with kLowest = 1 µs and
/// kGrowth = 2^(1/3) that is ~1 µs to ~72 min, three buckets per octave —
/// plus explicit underflow/overflow bins, so observe() never drops a
/// sample. Buckets are relaxed atomics: observe() is wait-free and
/// quantile error is bounded by construction: a reported quantile is the
/// geometric midpoint of the bucket holding that rank, so it is within
/// one bucket (a factor of kGrowth ≈ 1.26) of the exact order statistic.
/// That bound is what lets benches gate "histogram p50 agrees with the
/// measured p50" deterministically.
///
/// Quantile convention: the rank is the type-7 position q*(count-1) —
/// the same linear-interpolation definition util/stats quantile() uses on
/// raw samples (pinned by tests/test_stats.cpp), so engine percentiles
/// and histogram percentiles share one definition and differ only by
/// bucket resolution.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 96;
  static constexpr double kLowest = 1e-6;  ///< seconds

  /// Bucket upper bound growth factor, 2^(1/3).
  static double growth();
  /// Inclusive lower bound of bucket i.
  static double bucket_lower(std::size_t i);

  void observe(double seconds);

  /// Point-in-time copy of the counts; all quantile math happens on the
  /// snapshot so one stats() call reads each atomic exactly once.
  struct Snapshot {
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Type-7-ranked quantile mapped to the geometric midpoint of the
    /// bucket containing that rank; 0 for an empty histogram. Underflow
    /// ranks report kLowest/2, overflow ranks the top bucket bound.
    double quantile(double q) const;
    double mean_seconds() const {
      return count == 0 ? 0.0 : sum_seconds / static_cast<double>(count);
    }
  };
  Snapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Sliding-window event meter: counts land in fixed-width time slots on a
/// caller-supplied monotonic clock (seconds since whatever epoch the
/// caller times against), so the soak harness can report "served
/// throughput over the trailing N seconds" without retaining per-event
/// timestamps — resident cost is the slot ring, independent of event
/// count. Slots are (epoch, count) atomic pairs: record() is lock-free
/// and exact under a single writer (the soak harvest loop); concurrent
/// writers racing a slot turnover can at worst double-reset a slot, so
/// multi-writer use degrades to an approximation, never a crash. The
/// exact ledger lives in plain counters — this instrument is for rates.
class WindowedRate {
 public:
  explicit WindowedRate(double slot_seconds = 1.0, std::size_t slots = 64);

  /// Adds `n` events at time `t_seconds` (monotone nondecreasing under
  /// the single-writer contract).
  void record(double t_seconds, std::uint64_t n = 1);

  /// Events per second over the trailing `window_seconds` ending at
  /// `now_seconds`. The window is clamped to the ring's retained span,
  /// and the rate counts only slots that fall fully or partially inside
  /// [now - window, now] — a stale slot from a previous ring lap never
  /// contributes.
  double rate(double now_seconds, double window_seconds) const;

  /// All events ever recorded (monotonic, survives slot reuse).
  std::uint64_t total() const { return total_.load(std::memory_order_relaxed); }

  double slot_seconds() const { return slot_seconds_; }
  std::size_t slots() const { return ring_.size(); }

 private:
  struct Slot {
    std::atomic<std::int64_t> epoch{-1};  ///< slot index since t=0; -1 empty
    std::atomic<std::uint64_t> count{0};
  };

  double slot_seconds_;
  std::vector<Slot> ring_;
  std::atomic<std::uint64_t> total_{0};
};

/// Name -> instrument registry. Names are dotted paths
/// ("serve.latency.total_seconds"); a name is permanently one kind —
/// asking for it as another kind throws. Handles returned by
/// counter()/gauge()/histogram() are stable for the registry's lifetime
/// (instruments are never removed), so callers cache them and pay the
/// lookup once.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every serving layer reports into; a
  /// snapshot of it is what --metrics-out embeds in bench artifacts.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One instrument per line, sorted by name:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count=<n> mean=<s> p50=<s> p99=<s> p999=<s>
  std::string render_text() const;

  /// Emits {counters: {...}, gauges: {...}, histograms: {name: {count,
  /// sum_seconds, mean_seconds, p50..p999, underflow, overflow,
  /// buckets}}} as fields of an already-open JSON object.
  void render_json(JsonWriter& w) const;
  /// Convenience: the same snapshot as a standalone JSON document.
  std::string render_json() const;

 private:
  mutable util::Mutex mu_;  ///< guards the maps, never the instruments
  std::map<std::string, std::unique_ptr<Counter>> counters_
      QKMPS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ QKMPS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      QKMPS_GUARDED_BY(mu_);
};

}  // namespace qkmps::obs
