#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace qkmps {
class JsonWriter;
}

namespace qkmps::obs {

/// Request tracing for the serving stack (DESIGN.md §8). A request gets a
/// process-unique 64-bit trace id at submit(); every stage it crosses —
/// admission queue, router, wire, worker gather/simulate/kernel — appends
/// a Span, and the router stitches worker-side spans (shipped back inside
/// ShardReply, wire v3) into one cross-process timeline under that id.
///
/// Timestamps are steady-clock nanoseconds relative to the trace's epoch
/// (the submit instant on the clock of whichever process recorded the
/// span). Worker spans are recorded relative to their batch start and
/// re-based by the router under its wire span, so a stitched timeline is
/// coherent without any cross-process clock agreement.

/// Which side of the wire recorded a span. Survives the wire (one byte).
enum class SpanOrigin : std::uint8_t {
  kRouter = 0,  ///< router/frontend process (or the in-process engine)
  kWorker = 1,  ///< shard worker (serving_rankd / rank body)
};

const char* to_string(SpanOrigin origin);

/// One timed stage of a request. `start_ns` is relative to the trace
/// epoch (see file comment); a span never nests other spans structurally
/// — nesting is implied by containment of [start, start+duration).
struct Span {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  SpanOrigin origin = SpanOrigin::kRouter;
};

/// The finished, stitched record of one request: what RoutedPrediction
/// carries back to the caller and what the flight recorder rings.
struct TraceSummary {
  std::uint64_t trace_id = 0;  ///< 0 = request was never traced
  double total_seconds = 0.0;  ///< submit -> resolution
  std::vector<Span> spans;
};

/// Process-unique 64-bit trace ids: splitmix64 of an atomic counter, so
/// ids are well-mixed (usable as hash keys) and never 0 — 0 is reserved
/// to mean "untraced" on the wire, which is how a v2 peer's envelopes
/// decode.
std::uint64_t next_trace_id();

/// Mutable per-request trace under construction: an epoch plus the spans
/// recorded so far. Single-threaded by design — a TraceContext belongs to
/// whichever loop currently owns the request (submitter, router thread,
/// worker loop), mirroring how the request itself is handed off.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::chrono::steady_clock::time_point epoch{};
  std::vector<Span> spans;

  /// Starts a trace: fresh id, epoch = now.
  static TraceContext begin();

  /// Records [start, end) as `name`; clamps a backwards interval to zero
  /// duration rather than wrapping (the monotonic clock makes that a
  /// caller bug, not an NTP artifact, but a trace must never lie big).
  void add_span(std::string name, std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end,
                SpanOrigin origin = SpanOrigin::kRouter);

  /// Records a span from pre-computed offsets (the re-basing stitcher).
  void add_span_ns(std::string name, std::uint64_t start_ns,
                   std::uint64_t duration_ns, SpanOrigin origin);

  TraceSummary finish(std::chrono::steady_clock::time_point end) &&;
};

/// RAII span: times construction -> destruction (or stop()) on the steady
/// clock and appends to the context. A null context disarms it, so call
/// sites can be unconditional while tracing stays optional.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* ctx, std::string name,
             SpanOrigin origin = SpanOrigin::kRouter)
      : ctx_(ctx),
        name_(std::move(name)),
        origin_(origin),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedSpan() { stop(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span early (idempotent).
  void stop() {
    if (ctx_ == nullptr) return;
    ctx_->add_span(std::move(name_), start_, std::chrono::steady_clock::now(),
                   origin_);
    ctx_ = nullptr;
  }

 private:
  TraceContext* ctx_;
  std::string name_;
  SpanOrigin origin_;
  std::chrono::steady_clock::time_point start_;
};

/// Emits `trace` as a JSON object ({trace_id, total_seconds, spans: [...]})
/// into an already-open writer context (the caller owns begin/end of the
/// enclosing object/array).
void write_trace_json(JsonWriter& w, const TraceSummary& trace);

}  // namespace qkmps::obs
