#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/sync.hpp"

namespace qkmps {
class JsonWriter;
}

namespace qkmps::obs {

/// Flight recorder (DESIGN.md §8): a bounded in-memory ring of the most
/// recent trace summaries plus a second ring of fleet lifecycle events,
/// dumped as JSON when something goes wrong — worker demotion, engine
/// destruction, or on demand — so a kill-9/self-heal incident leaves a
/// postmortem artifact instead of just a counter bump.
///
/// Two rings, deliberately: a burst of shed requests (hundreds during one
/// worker death) must not evict the handful of spawn/respawn/demotion
/// events that explain it. Recording is mutex-guarded but allocation-
/// light (ring slots are reused in place), cheap enough for the router
/// thread's data path.

/// What happened to the fleet. Ordered roughly by lifecycle.
enum class EventKind : std::uint8_t {
  kSpawn,             ///< worker process spawned + handshaked in
  kWorkerDeath,       ///< live link died (crash, kill, protocol violation)
  kShed,              ///< a request future resolved kShed
  kRespawn,           ///< self-heal succeeded; slot back in rotation
  kRespawnFailed,     ///< one respawn attempt failed (spawn or handshake)
  kDemotion,          ///< respawn budget exhausted; slot sheds forever
  kHandshakeRefused,  ///< a connecting worker failed the pinned handshake
  kShardAdded,        ///< add_shard() grew the topology
  kShardRemoved,      ///< remove_shard() drained a slot out
};

const char* to_string(EventKind kind);

struct LifecycleEvent {
  std::uint64_t seq = 0;  ///< monotonic per recorder; survives ring wrap
  double uptime_seconds = 0.0;  ///< since the recorder was constructed
  EventKind kind = EventKind::kSpawn;
  int shard = -1;
  std::uint64_t generation = 0;
  std::string detail;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t trace_capacity = 256,
                          std::size_t event_capacity = 512);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record_trace(TraceSummary trace);
  void record_event(EventKind kind, int shard, std::uint64_t generation,
                    std::string detail);

  /// Oldest-first copies of the rings (snapshot; safe during recording).
  std::vector<LifecycleEvent> events() const;
  std::vector<TraceSummary> traces() const;
  /// Total ever recorded (>= ring size once wrapped).
  std::uint64_t events_recorded() const;
  std::uint64_t traces_recorded() const;

  /// {events_recorded, traces_recorded, events: [...], traces: [...]} as
  /// fields of an already-open JSON object.
  void dump_json(JsonWriter& w) const;
  /// The same dump as a standalone JSON document.
  std::string dump_json() const;
  /// Writes dump_json() to `path` (truncating); throws qkmps::Error if
  /// the file cannot be written.
  void dump_to_file(const std::string& path) const;

 private:
  const std::chrono::steady_clock::time_point birth_;
  const std::size_t trace_capacity_;
  const std::size_t event_capacity_;

  mutable util::Mutex mu_;
  /// Ring; next_trace_ is the head.
  std::vector<TraceSummary> traces_ QKMPS_GUARDED_BY(mu_);
  std::size_t next_trace_ QKMPS_GUARDED_BY(mu_) = 0;
  std::uint64_t traces_seq_ QKMPS_GUARDED_BY(mu_) = 0;
  std::vector<LifecycleEvent> events_ QKMPS_GUARDED_BY(mu_);
  std::size_t next_event_ QKMPS_GUARDED_BY(mu_) = 0;
  std::uint64_t events_seq_ QKMPS_GUARDED_BY(mu_) = 0;
};

}  // namespace qkmps::obs
