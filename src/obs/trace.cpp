#include "obs/trace.hpp"

#include <atomic>

#include "util/json_writer.hpp"

namespace qkmps::obs {

namespace {

/// splitmix64 finalizer — the standard 64-bit mixer; bijective, so
/// distinct counter values can never collide.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t ns_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  if (b <= a) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

std::string hex_id(std::uint64_t id) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[id & 0xF];
    id >>= 4;
  }
  return out;
}

}  // namespace

const char* to_string(SpanOrigin origin) {
  switch (origin) {
    case SpanOrigin::kRouter:
      return "router";
    case SpanOrigin::kWorker:
      return "worker";
  }
  return "unknown";
}

std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> counter{0};
  // mix64 is a bijection with mix64(x) == 0 only for one input; skip any
  // counter value that lands there so 0 stays the "untraced" sentinel.
  for (;;) {
    const std::uint64_t id =
        mix64(counter.fetch_add(1, std::memory_order_relaxed) + 1);
    if (id != 0) return id;
  }
}

TraceContext TraceContext::begin() {
  TraceContext ctx;
  ctx.trace_id = next_trace_id();
  ctx.epoch = std::chrono::steady_clock::now();
  return ctx;
}

void TraceContext::add_span(std::string name,
                            std::chrono::steady_clock::time_point start,
                            std::chrono::steady_clock::time_point end,
                            SpanOrigin origin) {
  Span span;
  span.name = std::move(name);
  span.start_ns = ns_between(epoch, start);
  span.duration_ns = ns_between(start, end);
  span.origin = origin;
  spans.push_back(std::move(span));
}

void TraceContext::add_span_ns(std::string name, std::uint64_t start_ns,
                               std::uint64_t duration_ns, SpanOrigin origin) {
  Span span;
  span.name = std::move(name);
  span.start_ns = start_ns;
  span.duration_ns = duration_ns;
  span.origin = origin;
  spans.push_back(std::move(span));
}

TraceSummary TraceContext::finish(
    std::chrono::steady_clock::time_point end) && {
  TraceSummary summary;
  summary.trace_id = trace_id;
  summary.total_seconds =
      static_cast<double>(ns_between(epoch, end)) * 1e-9;
  summary.spans = std::move(spans);
  return summary;
}

void write_trace_json(JsonWriter& w, const TraceSummary& trace) {
  // Hex string, not a JSON number: ids use all 64 bits and doubles only
  // carry 53.
  w.field("trace_id", hex_id(trace.trace_id));
  w.field("total_seconds", trace.total_seconds);
  w.begin_array("spans");
  for (const Span& span : trace.spans) {
    w.begin_array_object();
    w.field("name", span.name);
    w.field("origin", to_string(span.origin));
    w.field("start_ns", static_cast<long long>(span.start_ns));
    w.field("duration_ns", static_cast<long long>(span.duration_ns));
    w.end_object();
  }
  w.end_array();
}

}  // namespace qkmps::obs
