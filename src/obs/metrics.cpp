#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/json_writer.hpp"

namespace qkmps::obs {

namespace {

/// Bucket bounds precomputed once: bound[i] is the inclusive lower edge
/// of bucket i, bound[kBuckets] the exclusive top of the covered range.
const std::array<double, Histogram::kBuckets + 1>& bucket_bounds() {
  static const std::array<double, Histogram::kBuckets + 1> bounds = [] {
    std::array<double, Histogram::kBuckets + 1> b{};
    const double g = Histogram::growth();
    double edge = Histogram::kLowest;
    for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
      b[i] = edge;
      edge *= g;
    }
    return b;
  }();
  return bounds;
}

/// The value a bucket "stands for" in quantile math: the geometric
/// midpoint of its edges (log-scale buckets, so the geometric mean is the
/// unbiased center).
double bucket_mid(std::size_t i) {
  const auto& b = bucket_bounds();
  return std::sqrt(b[i] * b[i + 1]);
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double Histogram::growth() {
  static const double g = std::cbrt(2.0);
  return g;
}

double Histogram::bucket_lower(std::size_t i) { return bucket_bounds()[i]; }

void Histogram::observe(double seconds) {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, seconds);
  // NaN compares false everywhere below and would otherwise fall through
  // to a bucket via the log; park it in underflow with the negatives.
  if (!(seconds >= kLowest)) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto& bounds = bucket_bounds();
  if (seconds >= bounds[kBuckets]) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Log-index then nudge: the float log can land one bucket off at an
  // edge, so correct against the exact precomputed bounds.
  double li = std::log(seconds / kLowest) / std::log(growth());
  std::size_t i = static_cast<std::size_t>(std::max(0.0, li));
  i = std::min(i, kBuckets - 1);
  while (i > 0 && seconds < bounds[i]) --i;
  while (i + 1 < kBuckets && seconds >= bounds[i + 1]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_seconds = sum_.load(std::memory_order_relaxed);
  s.underflow = underflow_.load(std::memory_order_relaxed);
  s.overflow = overflow_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBuckets; ++i)
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return s;
}

double Histogram::Snapshot::quantile(double q) const {
  // Bucketed samples are always "sorted"; the binned population the
  // snapshot actually holds is authoritative (count_ may be momentarily
  // ahead of the bins under concurrent observes).
  std::uint64_t n = underflow + overflow;
  for (std::uint64_t b : buckets) n += b;
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));

  // Representative value of the sample at sorted rank r.
  const auto value_at = [this](std::uint64_t r) -> double {
    if (r < underflow) return kLowest / 2.0;
    std::uint64_t seen = underflow;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets[i];
      if (r < seen) return bucket_mid(i);
    }
    return bucket_bounds()[kBuckets];  // overflow ranks
  };

  // Type-7 position, matching util/stats quantile() on raw samples.
  const double pos = q * static_cast<double>(n - 1);
  const std::uint64_t lo = static_cast<std::uint64_t>(std::floor(pos));
  const std::uint64_t hi = static_cast<std::uint64_t>(std::ceil(pos));
  const double vlo = value_at(lo);
  if (hi == lo) return vlo;
  const double vhi = value_at(hi);
  const double frac = pos - static_cast<double>(lo);
  return vlo + (vhi - vlo) * frac;
}

WindowedRate::WindowedRate(double slot_seconds, std::size_t slots)
    : slot_seconds_(slot_seconds), ring_(std::max<std::size_t>(2, slots)) {
  QKMPS_CHECK(slot_seconds > 0.0);
}

void WindowedRate::record(double t_seconds, std::uint64_t n) {
  total_.fetch_add(n, std::memory_order_relaxed);
  if (!(t_seconds >= 0.0)) return;  // negative/NaN clocks don't take slots
  const std::int64_t epoch =
      static_cast<std::int64_t>(t_seconds / slot_seconds_);
  Slot& slot = ring_[static_cast<std::size_t>(epoch) % ring_.size()];
  if (slot.epoch.load(std::memory_order_relaxed) != epoch) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.epoch.store(epoch, std::memory_order_relaxed);
  }
  slot.count.fetch_add(n, std::memory_order_relaxed);
}

double WindowedRate::rate(double now_seconds, double window_seconds) const {
  if (!(now_seconds >= 0.0) || !(window_seconds > 0.0)) return 0.0;
  // Clamp to the retained span minus the current (partial) slot's lap
  // margin so one ring lap can never alias into the window.
  const double retained =
      slot_seconds_ * static_cast<double>(ring_.size() - 1);
  const double window = std::min(window_seconds, retained);
  const std::int64_t now_epoch =
      static_cast<std::int64_t>(now_seconds / slot_seconds_);
  const std::int64_t first_epoch = std::max<std::int64_t>(
      0, now_epoch - static_cast<std::int64_t>(window / slot_seconds_));
  std::uint64_t events = 0;
  for (const Slot& slot : ring_) {
    const std::int64_t e = slot.epoch.load(std::memory_order_relaxed);
    if (e >= first_epoch && e <= now_epoch)
      events += slot.count.load(std::memory_order_relaxed);
  }
  const double span = std::max(
      slot_seconds_,
      static_cast<double>(now_epoch - first_epoch + 1) * slot_seconds_);
  return static_cast<double>(events) / span;
}

Registry& Registry::global() {
  // Leaked singleton: handles outlive static teardown, so the registry
  // must never run its destructor. lint: allow(naked-new)
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::counter(const std::string& name) {
  util::MutexLock lock(mu_);
  QKMPS_CHECK_MSG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
                  "metric '" << name << "' already registered as another kind");
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  util::MutexLock lock(mu_);
  QKMPS_CHECK_MSG(counters_.count(name) == 0 && histograms_.count(name) == 0,
                  "metric '" << name << "' already registered as another kind");
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  util::MutexLock lock(mu_);
  QKMPS_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0,
                  "metric '" << name << "' already registered as another kind");
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Registry::render_text() const {
  std::ostringstream os;
  util::MutexLock lock(mu_);
  for (const auto& [name, c] : counters_)
    os << "counter " << name << " " << c->value() << "\n";
  for (const auto& [name, g] : gauges_)
    os << "gauge " << name << " " << g->value() << "\n";
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    os << "histogram " << name << " count=" << s.count
       << " mean=" << s.mean_seconds() << " p50=" << s.quantile(0.50)
       << " p99=" << s.quantile(0.99) << " p999=" << s.quantile(0.999)
       << "\n";
  }
  return os.str();
}

void Registry::render_json(JsonWriter& w) const {
  util::MutexLock lock(mu_);
  w.begin_object("counters");
  for (const auto& [name, c] : counters_)
    w.field(name, static_cast<long long>(c->value()));
  w.end_object();
  w.begin_object("gauges");
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.begin_object("histograms");
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    w.begin_object(name);
    w.field("count", static_cast<long long>(s.count));
    w.field("sum_seconds", s.sum_seconds);
    w.field("mean_seconds", s.mean_seconds());
    w.field("p50_seconds", s.quantile(0.50));
    w.field("p99_seconds", s.quantile(0.99));
    w.field("p999_seconds", s.quantile(0.999));
    w.field("underflow", static_cast<long long>(s.underflow));
    w.field("overflow", static_cast<long long>(s.overflow));
    // Sparse exposition: only occupied buckets, as [lower_bound, count]
    // pairs — 96 mostly-zero entries per histogram would drown the
    // artifact.
    w.begin_array("buckets");
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (s.buckets[i] == 0) continue;
      w.begin_array_object();
      w.field("le", Histogram::bucket_lower(i) * Histogram::growth());
      w.field("count", static_cast<long long>(s.buckets[i]));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

std::string Registry::render_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  render_json(w);
  w.end_object();
  return os.str();
}

}  // namespace qkmps::obs
