#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/json_writer.hpp"

namespace qkmps::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSpawn:
      return "spawn";
    case EventKind::kWorkerDeath:
      return "worker_death";
    case EventKind::kShed:
      return "shed";
    case EventKind::kRespawn:
      return "respawn";
    case EventKind::kRespawnFailed:
      return "respawn_failed";
    case EventKind::kDemotion:
      return "demotion";
    case EventKind::kHandshakeRefused:
      return "handshake_refused";
    case EventKind::kShardAdded:
      return "shard_added";
    case EventKind::kShardRemoved:
      return "shard_removed";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t trace_capacity,
                               std::size_t event_capacity)
    : birth_(std::chrono::steady_clock::now()),
      trace_capacity_(std::max<std::size_t>(1, trace_capacity)),
      event_capacity_(std::max<std::size_t>(1, event_capacity)) {}

void FlightRecorder::record_trace(TraceSummary trace) {
  util::MutexLock lock(mu_);
  if (traces_.size() < trace_capacity_) {
    traces_.push_back(std::move(trace));
  } else {
    traces_[next_trace_] = std::move(trace);
  }
  next_trace_ = (next_trace_ + 1) % trace_capacity_;
  ++traces_seq_;
}

void FlightRecorder::record_event(EventKind kind, int shard,
                                  std::uint64_t generation,
                                  std::string detail) {
  LifecycleEvent event;
  event.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - birth_)
          .count();
  event.kind = kind;
  event.shard = shard;
  event.generation = generation;
  event.detail = std::move(detail);
  util::MutexLock lock(mu_);
  event.seq = events_seq_++;
  if (events_.size() < event_capacity_) {
    events_.push_back(std::move(event));
  } else {
    events_[next_event_] = std::move(event);
  }
  next_event_ = (next_event_ + 1) % event_capacity_;
}

std::vector<LifecycleEvent> FlightRecorder::events() const {
  util::MutexLock lock(mu_);
  std::vector<LifecycleEvent> out;
  out.reserve(events_.size());
  // Oldest-first: once wrapped, the head slot is the oldest entry.
  const std::size_t start = events_.size() < event_capacity_ ? 0 : next_event_;
  for (std::size_t i = 0; i < events_.size(); ++i)
    out.push_back(events_[(start + i) % events_.size()]);
  return out;
}

std::vector<TraceSummary> FlightRecorder::traces() const {
  util::MutexLock lock(mu_);
  std::vector<TraceSummary> out;
  out.reserve(traces_.size());
  const std::size_t start = traces_.size() < trace_capacity_ ? 0 : next_trace_;
  for (std::size_t i = 0; i < traces_.size(); ++i)
    out.push_back(traces_[(start + i) % traces_.size()]);
  return out;
}

std::uint64_t FlightRecorder::events_recorded() const {
  util::MutexLock lock(mu_);
  return events_seq_;
}

std::uint64_t FlightRecorder::traces_recorded() const {
  util::MutexLock lock(mu_);
  return traces_seq_;
}

void FlightRecorder::dump_json(JsonWriter& w) const {
  // Copies first so the writer never runs under the ring lock (a slow
  // disk must not stall the router's record_event calls).
  const std::vector<LifecycleEvent> evs = events();
  const std::vector<TraceSummary> trs = traces();
  std::uint64_t ev_total, tr_total;
  {
    util::MutexLock lock(mu_);
    ev_total = events_seq_;
    tr_total = traces_seq_;
  }
  w.field("events_recorded", static_cast<long long>(ev_total));
  w.field("traces_recorded", static_cast<long long>(tr_total));
  w.begin_array("events");
  for (const LifecycleEvent& e : evs) {
    w.begin_array_object();
    w.field("seq", static_cast<long long>(e.seq));
    w.field("uptime_seconds", e.uptime_seconds);
    w.field("kind", to_string(e.kind));
    w.field("shard", e.shard);
    w.field("generation", static_cast<long long>(e.generation));
    w.field("detail", e.detail);
    w.end_object();
  }
  w.end_array();
  w.begin_array("traces");
  for (const TraceSummary& t : trs) {
    w.begin_array_object();
    write_trace_json(w, t);
    w.end_object();
  }
  w.end_array();
}

std::string FlightRecorder::dump_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  dump_json(w);
  w.end_object();
  return os.str();
}

void FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  QKMPS_CHECK_MSG(os.good(), "cannot open flight-recorder dump " << path);
  os << dump_json() << "\n";
  QKMPS_CHECK_MSG(os.good(), "failed writing flight-recorder dump " << path);
}

}  // namespace qkmps::obs
