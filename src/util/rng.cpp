#include "util/rng.hpp"

#include <cmath>

namespace qkmps {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from splitmix64 as recommended by the
  // generator's authors; guarantees a non-zero state.
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * kPi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return x % n;
}

cplx Rng::normal_cplx() {
  const double re = normal();
  const double im = normal();
  return {re, im};
}

Rng Rng::split() { return Rng(next() ^ 0xA5A5A5A55A5A5A5Aull); }

}  // namespace qkmps
