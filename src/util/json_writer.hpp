#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace qkmps {

/// Minimal JSON emitter for bench artifacts (the paper's artifact pipeline
/// writes one JSON per experiment run; we mirror that so bench outputs can
/// be post-processed identically). Not a general-purpose serializer: just
/// nested objects/arrays of numbers and strings, written in insertion order.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array(const std::string& key);
  void begin_object(const std::string& key);
  void end_array();
  /// Object element inside an array.
  void begin_array_object();

  void field(const std::string& key, const std::string& value);
  void field(const std::string& key, const char* value);
  void field(const std::string& key, double value);
  void field(const std::string& key, long long value);
  void field(const std::string& key, int value);
  void field(const std::string& key, bool value);
  void field(const std::string& key, const std::vector<double>& values);

  /// Bare numeric element inside an array.
  void element(double value);

 private:
  void comma();
  void indent();
  void key(const std::string& k);
  static std::string escape(const std::string& s);

  std::ostream& os_;
  int depth_ = 0;
  bool need_comma_ = false;
};

}  // namespace qkmps
