#include "util/json_writer.hpp"

#include <cmath>
#include <iomanip>

namespace qkmps {

void JsonWriter::comma() {
  if (need_comma_) os_ << ",";
  os_ << "\n";
  indent();
}

void JsonWriter::indent() {
  for (int i = 0; i < depth_; ++i) os_ << "  ";
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void JsonWriter::key(const std::string& k) {
  comma();
  os_ << '"' << escape(k) << "\": ";
}

void JsonWriter::begin_object() {
  if (depth_ > 0) comma();
  os_ << "{";
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::begin_array_object() {
  comma();
  os_ << "{";
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::end_object() {
  --depth_;
  os_ << "\n";
  indent();
  os_ << "}";
  need_comma_ = true;
}

void JsonWriter::begin_array(const std::string& k) {
  key(k);
  os_ << "[";
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::begin_object(const std::string& k) {
  key(k);
  os_ << "{";
  ++depth_;
  need_comma_ = false;
}

void JsonWriter::end_array() {
  --depth_;
  os_ << "\n";
  indent();
  os_ << "]";
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, const std::string& v) {
  key(k);
  os_ << '"' << escape(v) << '"';
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, const char* v) {
  field(k, std::string(v));
}

void JsonWriter::field(const std::string& k, double v) {
  key(k);
  if (std::isfinite(v)) {
    os_ << std::setprecision(17) << v;
  } else {
    os_ << "null";
  }
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, long long v) {
  key(k);
  os_ << v;
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, int v) {
  field(k, static_cast<long long>(v));
}

void JsonWriter::field(const std::string& k, bool v) {
  key(k);
  os_ << (v ? "true" : "false");
  need_comma_ = true;
}

void JsonWriter::field(const std::string& k, const std::vector<double>& vs) {
  begin_array(k);
  for (double v : vs) element(v);
  end_array();
}

void JsonWriter::element(double v) {
  comma();
  if (std::isfinite(v)) {
    os_ << std::setprecision(17) << v;
  } else {
    os_ << "null";
  }
  need_comma_ = true;
}

}  // namespace qkmps
