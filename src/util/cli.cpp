#include "util/cli.hpp"

namespace qkmps {

bool full_scale_requested() { return env_int("QKMPS_FULL", 0) != 0; }

long long env_int(const std::string& name, long long fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double env_double(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace qkmps
