#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qkmps {

double quantile(std::vector<double> samples, double q) {
  QKMPS_CHECK(!samples.empty());
  QKMPS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples) s += x;
  return s / static_cast<double>(samples.size());
}

double variance(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double s = 0.0;
  for (double x : samples) s += (x - m) * (x - m);
  return s / static_cast<double>(samples.size());
}

Summary summarize(std::vector<double> samples) {
  Summary out;
  if (samples.empty()) return out;
  out.count = samples.size();
  out.mean = mean(samples);
  std::sort(samples.begin(), samples.end());
  out.min = samples.front();
  out.max = samples.back();
  out.q1 = quantile(samples, 0.25);
  out.median = quantile(samples, 0.50);
  out.q3 = quantile(samples, 0.75);
  return out;
}

}  // namespace qkmps
