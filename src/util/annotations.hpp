#pragma once

/// Clang thread-safety annotation macros (DESIGN.md §11). Under clang the
/// macros expand to the `capability` attribute family and the whole tree
/// compiles with -Werror=thread-safety, so a mutex-guarded field accessed
/// without its lock is a build break, not a comment violation. Under any
/// other compiler they expand to nothing — gcc builds are bit-identical
/// to the unannotated tree.
///
/// The analysis only understands capability-annotated types, and
/// libstdc++'s std::mutex is not one — which is why util/sync.hpp wraps
/// the standard primitives in annotated equivalents (util::Mutex,
/// util::MutexLock, util::UniqueLock, util::CondVar) and the concurrent
/// subsystems hold those instead of std::mutex directly.
/// tests/negative_compile/ proves the macros are live under clang: an
/// unguarded access to a GUARDED_BY field must fail to compile there.
///
/// Conventions (see DESIGN.md §11 for the full list):
///  - Every mutex-guarded field carries GUARDED_BY(mu) naming its mutex.
///  - A private helper that assumes the lock is held carries REQUIRES(mu)
///    instead of re-acquiring.
///  - Fields owned by a single thread (a router loop's bookkeeping) or
///    immutable after publication are NOT annotated; a comment names the
///    owning thread and the TSan CI job checks the claim dynamically.

#if defined(__clang__) && (!defined(SWIG))
#define QKMPS_TS_ATTR(x) __attribute__((x))
#else
#define QKMPS_TS_ATTR(x)  // no-op off clang
#endif

#define QKMPS_CAPABILITY(x) QKMPS_TS_ATTR(capability(x))

#define QKMPS_SCOPED_CAPABILITY QKMPS_TS_ATTR(scoped_lockable)

#define QKMPS_GUARDED_BY(x) QKMPS_TS_ATTR(guarded_by(x))

#define QKMPS_PT_GUARDED_BY(x) QKMPS_TS_ATTR(pt_guarded_by(x))

#define QKMPS_ACQUIRED_BEFORE(...) QKMPS_TS_ATTR(acquired_before(__VA_ARGS__))

#define QKMPS_ACQUIRED_AFTER(...) QKMPS_TS_ATTR(acquired_after(__VA_ARGS__))

#define QKMPS_REQUIRES(...) QKMPS_TS_ATTR(requires_capability(__VA_ARGS__))

#define QKMPS_REQUIRES_SHARED(...) \
  QKMPS_TS_ATTR(requires_shared_capability(__VA_ARGS__))

#define QKMPS_ACQUIRE(...) QKMPS_TS_ATTR(acquire_capability(__VA_ARGS__))

#define QKMPS_ACQUIRE_SHARED(...) \
  QKMPS_TS_ATTR(acquire_shared_capability(__VA_ARGS__))

#define QKMPS_RELEASE(...) QKMPS_TS_ATTR(release_capability(__VA_ARGS__))

#define QKMPS_RELEASE_SHARED(...) \
  QKMPS_TS_ATTR(release_shared_capability(__VA_ARGS__))

#define QKMPS_TRY_ACQUIRE(...) QKMPS_TS_ATTR(try_acquire_capability(__VA_ARGS__))

#define QKMPS_EXCLUDES(...) QKMPS_TS_ATTR(locks_excluded(__VA_ARGS__))

#define QKMPS_ASSERT_CAPABILITY(x) QKMPS_TS_ATTR(assert_capability(x))

#define QKMPS_RETURN_CAPABILITY(x) QKMPS_TS_ATTR(lock_returned(x))

/// Escape hatch for functions whose locking discipline the analysis
/// cannot express (e.g. a lock handed across a scope boundary). Every use
/// must carry a comment naming the discipline that replaces the check —
/// scripts/lint_invariants.py enforces the comment.
#define QKMPS_NO_THREAD_SAFETY_ANALYSIS QKMPS_TS_ATTR(no_thread_safety_analysis)
