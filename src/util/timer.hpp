#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace qkmps {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { reset(); }

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-thread CPU-time stopwatch. Unlike Timer it does not advance while
/// the calling thread is descheduled, so per-rank compute phases measured
/// with it stay meaningful when more ranks than cores timeshare a machine
/// (the situation of the thread-backed rank runtime; see
/// kernel/distributed_gram.cpp).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { reset(); }
  void reset();
  /// CPU seconds consumed by this thread since construction/reset.
  double seconds() const;

 private:
  double start_ = 0.0;
};

/// RAII scope timer on the steady clock: hands the elapsed seconds to a
/// callback at scope exit. The building block under obs::ScopedSpan and
/// the bench harness's per-section timing — steady_clock, so a measured
/// interval can never go backwards under an NTP adjustment the way a
/// system_clock difference can.
template <typename Sink>
class ScopeTimer {
 public:
  explicit ScopeTimer(Sink sink) : sink_(std::move(sink)) {}
  ~ScopeTimer() { sink_(timer_.seconds()); }

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  Sink sink_;
  Timer timer_;
};

template <typename Sink>
ScopeTimer<Sink> make_scope_timer(Sink sink) {
  return ScopeTimer<Sink>(std::move(sink));
}

/// Accumulates named wall-clock phases; used by the bench harness to report
/// the simulation / inner-product / communication breakdown of Fig. 8.
class PhaseTimer {
 public:
  /// Adds `seconds` to the named phase.
  void add(const std::string& phase, double seconds);

  /// Total accumulated seconds for a phase (0 if never recorded).
  double total(const std::string& phase) const;

  /// All phases with their accumulated totals.
  const std::map<std::string, double>& phases() const { return phases_; }

  void clear() { phases_.clear(); }

  /// Merge another timer's totals into this one (e.g. per-rank timers into
  /// a global breakdown).
  void merge(const PhaseTimer& other);

 private:
  std::map<std::string, double> phases_;
};

/// RAII helper: times a scope and adds it to a PhaseTimer on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer& sink, std::string phase)
      : sink_(sink), phase_(std::move(phase)) {}
  ~ScopedPhase() { sink_.add(phase_, timer_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& sink_;
  std::string phase_;
  Timer timer_;
};

}  // namespace qkmps
