#pragma once

#include <array>
#include <cstdint>

#include "util/types.hpp"

namespace qkmps {

/// xoshiro256** pseudo-random generator (Blackman & Vigna). Deterministic,
/// seedable, and much faster than std::mt19937_64; every experiment in the
/// bench harness is seeded so results are reproducible run-to-run.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next();

  /// UniformBits for use with std:: distributions.
  result_type operator()() { return next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Box-Muller (cached second variate).
  double normal();
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);
  /// Complex number with iid standard-normal real and imaginary parts.
  cplx normal_cplx();

  /// Split off an independently-seeded child stream; used to hand each
  /// parallel rank its own generator without sharing state.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace qkmps
