#pragma once

#include <vector>

namespace qkmps {

/// Five-number-style summary used for the runtime plots (the paper reports
/// medians with first/third quartile error bars in Fig. 5).
struct Summary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

/// Computes min/q1/median/q3/max/mean of `samples`. Quartiles use linear
/// interpolation between order statistics (type-7, the numpy default).
Summary summarize(std::vector<double> samples);

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double>& samples);

/// Population variance; 0 for inputs with fewer than 2 elements.
double variance(const std::vector<double>& samples);

/// Quantile q in [0,1] with linear interpolation; input need not be sorted.
double quantile(std::vector<double> samples, double q);

}  // namespace qkmps
