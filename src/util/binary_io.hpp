#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace qkmps::io {

/// Binary primitives shared by every on-disk artifact in the repo (MPS
/// states, kernel matrices, model bundles) and by the serving wire frames
/// (parallel/socket_transport.hpp, serve/shard_wire.hpp). Values are
/// written in native host byte order — little-endian on every target the
/// repo supports; the formats are not portable to big-endian hosts. Each
/// format owns its magic/version header; these helpers only move PODs and
/// flat vectors and fail loudly on short reads *and* short writes so
/// corruption surfaces as a qkmps::Error at the faulting site (a full
/// disk or closed pipe at write time, a truncated or hostile stream at
/// read time) instead of garbage tensors later.

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
  QKMPS_CHECK_MSG(os.good(),
                  "short write (" << sizeof(T) << " bytes rejected)");
}

template <typename T>
T read_pod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  QKMPS_CHECK_MSG(is.good(), "truncated stream");
  return v;
}

/// Length-prefixed flat vector of trivially-copyable elements.
template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod(os, static_cast<std::int64_t>(v.size()));
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
    QKMPS_CHECK_MSG(os.good(), "short write (vector payload of "
                                   << v.size() * sizeof(T)
                                   << " bytes rejected)");
  }
}

namespace detail {
template <typename T>
std::vector<T> read_vector_payload(std::istream& is, std::int64_t n) {
  std::vector<T> v(static_cast<std::size_t>(n));
  if (n > 0) {
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
    QKMPS_CHECK_MSG(is.good(), "truncated vector payload");
  }
  return v;
}
}  // namespace detail

template <typename T>
std::vector<T> read_vector(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::int64_t>(is);
  QKMPS_CHECK_MSG(n >= 0, "negative vector length");
  // Bound the length against the bytes actually left in the stream (when
  // it is seekable) so a corrupt length prefix fails as qkmps::Error
  // instead of bad_alloc / a runaway allocation. Non-seekable streams
  // (tellg() == -1: pipes, sockets) get no bound here — callers reading
  // untrusted bytes must use the explicit byte-budget overload below.
  const std::istream::pos_type pos = is.tellg();
  if (pos != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    // The probe seeks must not leave sticky eof/fail state behind on
    // stream types whose end-seek trips a state bit; the payload read
    // below re-checks health on its own.
    is.clear();
    is.seekg(pos);
    QKMPS_CHECK_MSG(is.good(), "stream seek failed during length check");
    QKMPS_CHECK_MSG(
        end >= pos &&
            n <= (end - pos) / static_cast<std::streamoff>(sizeof(T)),
        "vector length " << n << " exceeds remaining stream size");
  }
  return detail::read_vector_payload<T>(is, n);
}

/// Byte-budget overload for non-seekable / untrusted streams (the socket
/// wire codec): the decoded length may claim at most `max_bytes` of
/// payload, whatever the stream says about its own size. A hostile or
/// corrupt length prefix therefore fails as qkmps::Error before any
/// allocation happens — it can never over-allocate.
template <typename T>
std::vector<T> read_vector(std::istream& is, std::uint64_t max_bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::int64_t>(is);
  QKMPS_CHECK_MSG(n >= 0, "negative vector length");
  QKMPS_CHECK_MSG(
      static_cast<std::uint64_t>(n) <= max_bytes / sizeof(T),
      "vector length " << n << " exceeds the " << max_bytes
                       << "-byte budget");
  return detail::read_vector_payload<T>(is, n);
}

}  // namespace qkmps::io
