#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace qkmps::io {

/// Binary primitives shared by every on-disk artifact in the repo (MPS
/// states, kernel matrices, model bundles). Values are written in native
/// host byte order — little-endian on every target the repo supports; the
/// formats are not portable to big-endian hosts. Each format owns its
/// magic/version header; these helpers only move PODs and flat vectors and
/// fail loudly on short reads so corruption surfaces as a qkmps::Error
/// instead of garbage tensors.

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  QKMPS_CHECK_MSG(is.good(), "truncated stream");
  return v;
}

/// Length-prefixed flat vector of trivially-copyable elements.
template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod(os, static_cast<std::int64_t>(v.size()));
  if (!v.empty())
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::int64_t>(is);
  QKMPS_CHECK_MSG(n >= 0, "negative vector length");
  // Bound the length against the bytes actually left in the stream (when
  // it is seekable) so a corrupt length prefix fails as qkmps::Error
  // instead of bad_alloc / a runaway allocation.
  const std::istream::pos_type pos = is.tellg();
  if (pos != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(pos);
    QKMPS_CHECK_MSG(
        n <= (end - pos) / static_cast<std::streamoff>(sizeof(T)),
        "vector length " << n << " exceeds remaining stream size");
  }
  std::vector<T> v(static_cast<std::size_t>(n));
  if (n > 0) {
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
    QKMPS_CHECK_MSG(is.good(), "truncated vector payload");
  }
  return v;
}

}  // namespace qkmps::io
