#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qkmps {

/// Error type thrown on precondition violations in the public API.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed (" << cond << ")";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace qkmps

/// Precondition check that stays on in release builds: the simulator is a
/// research instrument and silent index corruption is worse than the branch.
#define QKMPS_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::qkmps::detail::fail(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define QKMPS_CHECK_MSG(cond, msg)                              \
  do {                                                          \
    if (!(cond)) {                                              \
      std::ostringstream qkmps_os_;                             \
      qkmps_os_ << msg;                                         \
      ::qkmps::detail::fail(#cond, __FILE__, __LINE__,          \
                            qkmps_os_.str());                   \
    }                                                           \
  } while (false)
