#pragma once

#include <atomic>
#include <cstdint>

namespace qkmps {

/// Monotonic max over an atomic counter, relaxed ordering: the serving
/// layer's high-water marks (largest batch drained, deepest admission
/// queue) are statistics, not synchronization.
inline void fetch_max(std::atomic<std::uint64_t>& counter,
                      std::uint64_t value) {
  std::uint64_t prev = counter.load(std::memory_order_relaxed);
  while (prev < value &&
         !counter.compare_exchange_weak(prev, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace qkmps
