#include "util/timer.hpp"

#include <ctime>

namespace qkmps {

namespace {
double thread_cpu_seconds_now() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}
}  // namespace

void ThreadCpuTimer::reset() { start_ = thread_cpu_seconds_now(); }

double ThreadCpuTimer::seconds() const {
  return thread_cpu_seconds_now() - start_;
}

void PhaseTimer::add(const std::string& phase, double seconds) {
  phases_[phase] += seconds;
}

double PhaseTimer::total(const std::string& phase) const {
  const auto it = phases_.find(phase);
  return it == phases_.end() ? 0.0 : it->second;
}

void PhaseTimer::merge(const PhaseTimer& other) {
  for (const auto& [name, secs] : other.phases_) phases_[name] += secs;
}

}  // namespace qkmps
