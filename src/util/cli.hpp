#pragma once

#include <cstdlib>
#include <string>

namespace qkmps {

/// Reads scaling knobs from the environment. The bench harness defaults to
/// CI-scale parameters; setting QKMPS_FULL=1 switches every bench to the
/// paper-scale sweep (see DESIGN.md section 6).
bool full_scale_requested();

/// Integer environment variable with a default.
long long env_int(const std::string& name, long long fallback);

/// Floating-point environment variable with a default.
double env_double(const std::string& name, double fallback);

}  // namespace qkmps
