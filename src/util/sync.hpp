#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace qkmps::util {

/// Capability-annotated synchronization primitives (DESIGN.md §11).
///
/// Clang's thread-safety analysis only tracks lock state through types
/// declared with the `capability` attribute; libstdc++'s std::mutex and
/// std::lock_guard carry no annotations, so a tree that uses them
/// directly gets no checking at all. These zero-overhead wrappers are the
/// project's lockable vocabulary: every mutex in the concurrent
/// subsystems (serve/, obs/, parallel/, kernel/distributed_gram) is a
/// util::Mutex, every critical section a util::MutexLock or
/// util::UniqueLock, and every condition wait a util::CondVar — which is
/// what lets -Werror=thread-safety turn "guarded by mu_" comments into
/// compile errors. scripts/lint_invariants.py rejects raw std::mutex
/// outside this header so the discipline cannot erode silently.
///
/// Off clang the annotation macros are no-ops and everything inlines to
/// the std primitive it wraps.

/// Annotated std::mutex.
class QKMPS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QKMPS_ACQUIRE() { mu_.lock(); }
  void unlock() QKMPS_RELEASE() { mu_.unlock(); }
  bool try_lock() QKMPS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex mu_;
};

/// Annotated std::lock_guard: lock for the enclosing scope, no unlock.
class QKMPS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QKMPS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() QKMPS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated std::unique_lock over a Mutex: constructed locked, and the
/// handle condition waits release/re-acquire through (CondVar::wait
/// returns with the lock re-held, so from the analysis' point of view the
/// capability never lapses inside the wait loop). Supports the manual
/// unlock()/lock() window the batcher loops use to run a batch outside
/// the lock.
class QKMPS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) QKMPS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~UniqueLock() QKMPS_RELEASE() = default;

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() QKMPS_ACQUIRE() { lock_.lock(); }
  void unlock() QKMPS_RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Annotated std::condition_variable companion to UniqueLock.
///
/// Waits take the annotated lock handle; predicates stay at the call site
/// as explicit `while (!ready) cv.wait(lock);` loops rather than the
/// predicate-lambda overloads — a lambda body is analyzed as its own
/// function, so guarded accesses inside one would (falsely) trip the
/// analysis. The explicit-loop idiom keeps every guarded read lexically
/// inside the locked scope. scripts/lint_invariants.py pins the idiom.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qkmps::util
