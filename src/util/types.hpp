#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace qkmps {

/// Scalar type used throughout the simulator. All quantum amplitudes are
/// 64-bit complex, matching the paper's "errors due to 64-bit float point
/// precision are at the scale of 1e-16" truncation argument.
using cplx = std::complex<double>;
using real = double;

/// Index type for tensor extents and loop bounds. Signed, per C++ Core
/// Guidelines ES.100-ES.107 (avoid unsigned arithmetic surprises).
using idx = std::int64_t;

inline constexpr double kPi = 3.141592653589793238462643383279502884;

/// Singular values below this squared-weight budget are truncated (Eq. 8 of
/// the paper): sum over discarded s_i^2 <= kDefaultTruncationError, i.e.
/// machine precision for 64-bit floats.
inline constexpr double kDefaultTruncationError = 1e-16;

}  // namespace qkmps
