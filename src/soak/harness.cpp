#include "soak/harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace qkmps::soak {

namespace {

bool bitwise_equal(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

struct InFlight {
  std::future<serve::RoutedPrediction> future;
  Priority priority = Priority::kStandard;
  idx row = 0;
};

}  // namespace

SoakHarness::SoakHarness(kernel::RealMatrix pool,
                         std::vector<double> reference, SoakConfig config)
    : pool_(std::move(pool)),
      reference_(std::move(reference)),
      config_(config) {
  QKMPS_CHECK_MSG(pool_.rows() > 0, "soak needs a non-empty request pool");
  QKMPS_CHECK_MSG(
      reference_.empty() ||
          static_cast<idx>(reference_.size()) == pool_.rows(),
      "reference must be empty or one value per pool row");
  QKMPS_CHECK(config_.max_in_flight > 0);
  QKMPS_CHECK(config_.num_unique >= 0 && config_.num_unique <= pool_.rows());
  QKMPS_CHECK(config_.interactive_fraction >= 0.0 &&
              config_.standard_fraction >= 0.0 &&
              config_.interactive_fraction + config_.standard_fraction <= 1.0);
  QKMPS_CHECK_MSG(
      config_.batch_gate_fraction <= config_.standard_gate_fraction,
      "batch must gate at or below standard (strict priority order)");
}

SoakReport SoakHarness::run_impl(
    const std::function<std::future<serve::RoutedPrediction>(
        std::vector<double>)>& submit,
    const std::function<SloAccountant::EngineTotals()>& engine_totals,
    RelationCoverageMap* coverage,
    const std::function<void(const SoakReport&)>& progress) {
  const idx num_unique =
      config_.num_unique == 0 ? pool_.rows() : config_.num_unique;
  std::vector<ShapeConfig> shapes = config_.shapes;
  if (shapes.empty()) shapes.push_back(sustained(50'000.0));
  ArrivalProcess arrivals(std::move(shapes));
  Rng rng(config_.seed);
  SloAccountant slo(config_.slo);
  Timer timer;

  SoakReport report;
  std::deque<InFlight> window;

  // First-seen bookkeeping per unique key: the in-stream metamorphic
  // oracles. O(num_unique), independent of total_requests.
  std::vector<char> seen(static_cast<std::size_t>(num_unique), 0);
  std::vector<double> first_value(static_cast<std::size_t>(num_unique), 0.0);
  std::vector<int> first_shard(static_cast<std::size_t>(num_unique), -1);

  std::uint64_t harvested = 0;

  const EngineState base_state{false, config_.post_resize, config_.post_death,
                               false};

  const auto harvest = [&](InFlight item) {
    const std::size_t key = static_cast<std::size_t>(item.row);
    serve::RoutedPrediction r;
    try {
      r = item.future.get();
    } catch (const std::exception&) {
      ++report.lost;
      ++harvested;
      return;
    }
    const double now_s = timer.seconds();
    slo.record(item.priority, r.status, r.total_seconds, now_s);
    if (r.status == serve::ServeStatus::kServed) {
      const bool warm = seen[key] != 0;
      // In-stream bitwise parity: against the reference oracle when we
      // have one, against the key's first serve always.
      bool parity_ok = true;
      if (!reference_.empty() &&
          !bitwise_equal(r.prediction.decision_value, reference_[key]))
        parity_ok = false;
      if (warm &&
          !bitwise_equal(r.prediction.decision_value, first_value[key]))
        parity_ok = false;
      if (!parity_ok) ++report.parity_violations;
      // Routing stability: a key must keep its shard (topology is
      // whatever history the config flags describe, fixed during a run).
      bool routing_ok = true;
      if (warm && r.shard != first_shard[key]) routing_ok = false;
      if (!routing_ok) ++report.routing_violations;
      if (coverage != nullptr) {
        EngineState state = base_state;
        state.warm_cache = warm;
        // Cold parity needs the oracle; without it the first serve only
        // establishes the warm baseline.
        if (warm || !reference_.empty())
          coverage->record(Relation::kBitwiseParity, state);
        if (warm) coverage->record(Relation::kRoutingStability, state);
      }
      if (!warm) {
        seen[key] = 1;
        first_value[key] = r.prediction.decision_value;
        first_shard[key] = r.shard;
      }
    }
    ++harvested;
    if (progress && config_.progress_every != 0 &&
        harvested % config_.progress_every == 0) {
      SoakReport live = report;
      live.attempted = harvested + report.gated;
      live.elapsed_seconds = timer.seconds();
      live.peak_in_flight =
          std::max<std::uint64_t>(live.peak_in_flight, window.size());
      live.slo = slo.snapshot(timer.seconds(), config_.report_window_s);
      progress(live);
    }
  };

  for (std::uint64_t r = 0; r < config_.total_requests; ++r) {
    ++report.attempted;
    const double arrival_s = arrivals.next_arrival_us() / 1e6;
    if (config_.pace) {
      double behind = arrival_s - timer.seconds();
      while (behind > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(behind, 0.01)));
        behind = arrival_s - timer.seconds();
      }
    }

    // Priority draw, then the soak-level gate: lower classes yield while
    // the in-flight window is congested.
    const double u = rng.uniform();
    Priority priority = Priority::kBatch;
    if (u < config_.interactive_fraction) {
      priority = Priority::kInteractive;
    } else if (u < config_.interactive_fraction + config_.standard_fraction) {
      priority = Priority::kStandard;
    }
    const double fullness = static_cast<double>(window.size()) /
                            static_cast<double>(config_.max_in_flight);
    const bool gate =
        (priority == Priority::kBatch &&
         fullness >= config_.batch_gate_fraction) ||
        (priority == Priority::kStandard &&
         fullness >= config_.standard_gate_fraction);
    if (gate) {
      slo.record_gated(priority);
      ++report.gated;
      continue;
    }

    while (window.size() >= config_.max_in_flight) {
      InFlight oldest = std::move(window.front());
      window.pop_front();
      harvest(std::move(oldest));
    }

    const idx row = static_cast<idx>(
        rng.uniform_int(static_cast<std::uint64_t>(num_unique)));
    InFlight item;
    item.priority = priority;
    item.row = row;
    item.future = submit(std::vector<double>(
        pool_.row(row), pool_.row(row) + pool_.cols()));
    window.push_back(std::move(item));
    report.peak_in_flight =
        std::max<std::uint64_t>(report.peak_in_flight, window.size());
  }

  while (!window.empty()) {
    InFlight oldest = std::move(window.front());
    window.pop_front();
    harvest(std::move(oldest));
  }

  report.elapsed_seconds = timer.seconds();
  report.slo = slo.snapshot(report.elapsed_seconds, config_.report_window_s);
  report.reconciled = slo.reconciles(engine_totals(), &report.reconcile_detail);
  return report;
}

}  // namespace qkmps::soak
