#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "serve/sharded_engine.hpp"

namespace qkmps::soak {

/// Priority class a soak request is admitted under. Classes flow through
/// admission control at the harness level: kInteractive is never gated,
/// kBatch is gated first when the in-flight window fills (see
/// SoakConfig), and every outcome is accounted per class so overload
/// behaviour is attributable — "the flash crowd shed 4% of batch traffic
/// and 0% of interactive" instead of one blended number.
enum class Priority : std::uint8_t {
  kInteractive = 0,
  kStandard = 1,
  kBatch = 2,
};
inline constexpr std::size_t kNumPriorities = 3;

const char* to_string(Priority priority);

/// Per-class latency deadlines: a *served* request slower than its class
/// deadline counts as a deadline miss (it resolved, but uselessly late —
/// the fraud-decision-after-the-transaction-cleared failure mode).
struct SloTargets {
  std::array<double, kNumPriorities> deadline_s{0.050, 0.250, 5.0};
};

/// Point-in-time per-class ledger. Counter invariant once traffic
/// settles: submitted == gated + served + rejected + shed (+ lost, which
/// the harness reports separately and gates at zero).
struct ClassLedger {
  std::uint64_t submitted = 0;  ///< offered to this class
  std::uint64_t gated = 0;      ///< refused by the soak-level priority gate
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;   ///< engine admission refusals
  std::uint64_t shed = 0;       ///< engine evictions / worker-death sheds
  std::uint64_t deadline_missed = 0;
  double p50_s = 0.0;   ///< served-latency quantiles from the log-bucket
  double p99_s = 0.0;   ///< histogram (within one growth factor of exact,
  double p999_s = 0.0;  ///< the obs::Histogram error bound)
  double mean_s = 0.0;
};

struct SloSnapshot {
  std::array<ClassLedger, kNumPriorities> classes{};
  // Totals across classes.
  std::uint64_t submitted = 0;
  std::uint64_t gated = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_missed = 0;
  /// Served throughput over the trailing window handed to snapshot().
  double windowed_rps = 0.0;
};

/// The soak harness's SLO ledger: per-priority-class counters, a
/// log-bucket latency histogram per class (p99.9 at histogram
/// resolution), and a sliding served-throughput meter. record() is
/// lock-free (atomics + wait-free histogram observe); snapshot() is a
/// point-in-time read that never blocks recording. The ledger reconciles
/// *exactly* against engine counters — reconcile() is a soak gate, not a
/// tolerance check.
class SloAccountant {
 public:
  explicit SloAccountant(SloTargets targets = {});

  /// The request was refused by the harness's priority gate before ever
  /// reaching the engine.
  void record_gated(Priority priority);

  /// The request's future resolved: `status` from the engine,
  /// `latency_s` the admission->fulfilment latency (served requests
  /// only; ignored otherwise), `now_s` the harness clock for the
  /// windowed throughput meter.
  void record(Priority priority, serve::ServeStatus status, double latency_s,
              double now_s);

  SloSnapshot snapshot(double now_s, double window_s = 10.0) const;

  const SloTargets& targets() const { return targets_; }
  const obs::Histogram& latency_histogram(Priority priority) const {
    return classes_[static_cast<std::size_t>(priority)].latency;
  }

  /// Engine-side counter totals the ledger must match exactly. Both
  /// ShardedStats and RankShardedStats carry these field names; the
  /// template lifts either.
  struct EngineTotals {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
  };
  template <typename Stats>
  static EngineTotals totals(const Stats& stats) {
    return EngineTotals{stats.submitted, stats.completed, stats.rejected,
                        stats.shed};
  }

  /// Exact reconciliation: ledger submitted minus gated must equal what
  /// the engine saw, and served/rejected/shed must match the engine's
  /// completed/rejected/shed one for one. On mismatch returns false and
  /// (when non-null) explains which counter diverged in `why`.
  bool reconciles(const EngineTotals& engine, std::string* why = nullptr) const;

 private:
  struct PerClass {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> gated{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> deadline_missed{0};
    obs::Histogram latency;
  };

  SloTargets targets_;
  std::array<PerClass, kNumPriorities> classes_;
  obs::WindowedRate served_meter_{0.25, 256};
};

}  // namespace qkmps::soak
