#include "soak/slo.hpp"

#include <sstream>

namespace qkmps::soak {

const char* to_string(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kStandard:
      return "standard";
    case Priority::kBatch:
      return "batch";
  }
  return "unknown";
}

SloAccountant::SloAccountant(SloTargets targets) : targets_(targets) {}

void SloAccountant::record_gated(Priority priority) {
  PerClass& c = classes_[static_cast<std::size_t>(priority)];
  c.submitted.fetch_add(1, std::memory_order_relaxed);
  c.gated.fetch_add(1, std::memory_order_relaxed);
}

void SloAccountant::record(Priority priority, serve::ServeStatus status,
                           double latency_s, double now_s) {
  PerClass& c = classes_[static_cast<std::size_t>(priority)];
  c.submitted.fetch_add(1, std::memory_order_relaxed);
  switch (status) {
    case serve::ServeStatus::kServed:
      c.served.fetch_add(1, std::memory_order_relaxed);
      c.latency.observe(latency_s);
      if (latency_s >
          targets_.deadline_s[static_cast<std::size_t>(priority)]) {
        c.deadline_missed.fetch_add(1, std::memory_order_relaxed);
      }
      served_meter_.record(now_s);
      break;
    case serve::ServeStatus::kRejected:
      c.rejected.fetch_add(1, std::memory_order_relaxed);
      break;
    case serve::ServeStatus::kShed:
      c.shed.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

SloSnapshot SloAccountant::snapshot(double now_s, double window_s) const {
  SloSnapshot s;
  for (std::size_t i = 0; i < kNumPriorities; ++i) {
    const PerClass& c = classes_[i];
    ClassLedger& out = s.classes[i];
    out.submitted = c.submitted.load(std::memory_order_relaxed);
    out.gated = c.gated.load(std::memory_order_relaxed);
    out.served = c.served.load(std::memory_order_relaxed);
    out.rejected = c.rejected.load(std::memory_order_relaxed);
    out.shed = c.shed.load(std::memory_order_relaxed);
    out.deadline_missed = c.deadline_missed.load(std::memory_order_relaxed);
    const obs::Histogram::Snapshot h = c.latency.snapshot();
    out.p50_s = h.quantile(0.50);
    out.p99_s = h.quantile(0.99);
    out.p999_s = h.quantile(0.999);
    out.mean_s = h.mean_seconds();
    s.submitted += out.submitted;
    s.gated += out.gated;
    s.served += out.served;
    s.rejected += out.rejected;
    s.shed += out.shed;
    s.deadline_missed += out.deadline_missed;
  }
  s.windowed_rps = served_meter_.rate(now_s, window_s);
  return s;
}

bool SloAccountant::reconciles(const EngineTotals& engine,
                               std::string* why) const {
  const SloSnapshot s = snapshot(0.0, 1.0);
  const auto fail = [&](const char* counter, std::uint64_t ledger,
                        std::uint64_t theirs) {
    if (why != nullptr) {
      std::ostringstream os;
      os << "SLO ledger does not reconcile: " << counter << " ledger="
         << ledger << " engine=" << theirs;
      *why = os.str();
    }
    return false;
  };
  // Everything the ledger saw minus what the gate refused must be
  // exactly what reached the engine...
  if (s.submitted - s.gated != engine.submitted)
    return fail("submitted-gated vs engine.submitted", s.submitted - s.gated,
                engine.submitted);
  // ...and each terminal outcome must match one for one.
  if (s.served != engine.completed)
    return fail("served vs engine.completed", s.served, engine.completed);
  if (s.rejected != engine.rejected)
    return fail("rejected vs engine.rejected", s.rejected, engine.rejected);
  if (s.shed != engine.shed) return fail("shed vs engine.shed", s.shed,
                                         engine.shed);
  if (why != nullptr) why->clear();
  return true;
}

}  // namespace qkmps::soak
