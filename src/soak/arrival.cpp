#include "soak/arrival.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qkmps::soak {

const char* to_string(ShapeKind kind) {
  switch (kind) {
    case ShapeKind::kSustained:
      return "sustained";
    case ShapeKind::kDiurnal:
      return "diurnal";
    case ShapeKind::kFlashCrowd:
      return "flash-crowd";
  }
  return "unknown";
}

ShapeConfig sustained(double rate_rps) {
  ShapeConfig s;
  s.kind = ShapeKind::kSustained;
  s.rate_rps = rate_rps;
  return s;
}

ShapeConfig diurnal(double peak_rps, double period_s, double trough_fraction) {
  ShapeConfig s;
  s.kind = ShapeKind::kDiurnal;
  s.rate_rps = peak_rps;
  s.period_s = period_s;
  s.trough_fraction = trough_fraction;
  return s;
}

ShapeConfig flash_crowd(double base_rps, double every_s, double duration_s,
                        double multiplier) {
  ShapeConfig s;
  s.kind = ShapeKind::kFlashCrowd;
  s.rate_rps = base_rps;
  s.crowd_every_s = every_s;
  s.crowd_duration_s = duration_s;
  s.crowd_multiplier = multiplier;
  return s;
}

namespace {

double shape_rate(const ShapeConfig& shape, double t_s) {
  switch (shape.kind) {
    case ShapeKind::kSustained:
      return shape.rate_rps;
    case ShapeKind::kDiurnal: {
      // Oscillates between trough_fraction * peak (the overnight trough)
      // and the peak, one full cycle per period.
      const double phase =
          std::sin(2.0 * 3.14159265358979323846 * t_s / shape.period_s);
      const double swing = 0.5 * (1.0 + phase);  // in [0, 1]
      return shape.rate_rps *
             (shape.trough_fraction + (1.0 - shape.trough_fraction) * swing);
    }
    case ShapeKind::kFlashCrowd: {
      // The crowd fires mid-interval so a process never starts inside one.
      const double into = std::fmod(t_s, shape.crowd_every_s);
      const double start = 0.5 * shape.crowd_every_s;
      const bool crowded =
          into >= start && into < start + shape.crowd_duration_s;
      return shape.rate_rps * (crowded ? shape.crowd_multiplier : 1.0);
    }
  }
  return 0.0;
}

}  // namespace

ArrivalProcess::ArrivalProcess(std::vector<ShapeConfig> shapes)
    : shapes_(std::move(shapes)) {
  QKMPS_CHECK_MSG(!shapes_.empty(), "an ArrivalProcess needs >= 1 shape");
  for (const ShapeConfig& s : shapes_) {
    QKMPS_CHECK_MSG(s.rate_rps > 0.0, "shape rate must be positive");
    if (s.kind == ShapeKind::kDiurnal) {
      QKMPS_CHECK(s.period_s > 0.0);
      QKMPS_CHECK(s.trough_fraction > 0.0 && s.trough_fraction <= 1.0);
    }
    if (s.kind == ShapeKind::kFlashCrowd) {
      QKMPS_CHECK(s.crowd_every_s > 0.0);
      QKMPS_CHECK(s.crowd_duration_s > 0.0 &&
                  s.crowd_duration_s <= 0.5 * s.crowd_every_s);
      QKMPS_CHECK(s.crowd_multiplier >= 1.0);
    }
  }
}

double ArrivalProcess::rate_at(double t_seconds) const {
  double rate = 0.0;
  for (const ShapeConfig& s : shapes_) rate += shape_rate(s, t_seconds);
  return rate;
}

double ArrivalProcess::next_arrival_us() {
  const double at = t_s_;
  t_s_ += 1.0 / rate_at(t_s_);
  return at * 1e6;
}

}  // namespace qkmps::soak
