#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/kernel_matrix.hpp"
#include "serve/model_bundle.hpp"
#include "serve/rank_sharded_engine.hpp"
#include "soak/coverage.hpp"
#include "util/rng.hpp"

namespace qkmps::soak {

struct FuzzLabConfig {
  std::uint64_t seed = 0x50AC;
  /// Initial fleet size of each lab engine.
  std::size_t num_shards = 2;
  /// Ring points per shard for the lab engines' consistent-hash routers.
  std::size_t virtual_nodes = 64;
  /// Socket-mode knobs; leaving worker_path empty keeps the lab
  /// in-process, which makes every post-death cell unreachable (the
  /// in-process transport cannot lose a worker) — build the coverage map
  /// with with_worker_death = supports_worker_death().
  std::string worker_path;
  std::string bundle_dir;
  /// Engine-level resize-retention checks add a real shard each time;
  /// past this fleet size the lab switches to router-level retention
  /// checks so a long soak cannot grow the fleet without bound.
  std::size_t max_fleet = 6;
};

/// Verdict of one executed fuzz step.
struct CheckResult {
  bool passed = false;
  Relation relation = Relation::kBitwiseParity;
  EngineState state;   ///< the state the check actually ran under
  std::string detail;  ///< failure explanation; empty on pass
};

/// Executes FuzzSteps against live serving components: holds a small
/// stable of RankShardedEngines — one per reachable (post_resize,
/// post_death) lifecycle corner, built lazily because the post-death
/// corners need worker processes — plus the shard-wire codecs, and runs
/// the step's metamorphic relation in the requested engine state,
/// recording the landed cell into the RelationCoverageMap. Engine states
/// are monotone (an engine that has resized stays post-resize), which is
/// why the stable is keyed by lifecycle corner instead of mutating one
/// engine back and forth. Single-threaded: the fuzz loop owns the lab.
class FuzzLab {
 public:
  /// `pool` rows are the fuzz input space; `reference[i]` must be the
  /// sequential-pipeline decision value for pool row i (the bitwise
  /// oracle for kBitwiseParity).
  FuzzLab(serve::ModelBundle bundle, kernel::RealMatrix pool,
          std::vector<double> reference, FuzzLabConfig config = {});
  ~FuzzLab();

  /// Whether post-death states are reachable (socket knobs configured).
  bool supports_worker_death() const { return !config_.worker_path.empty(); }

  /// Drives the engine for `step.state` into that state (lazily building
  /// / killing as needed), runs `step.relation`, and records the landed
  /// cell in `map`. Returns the verdict; a failed check is a finding, not
  /// an exception.
  CheckResult run(const FuzzStep& step, RelationCoverageMap& map);

  const FuzzLabConfig& config() const { return config_; }

 private:
  struct EngineSlot {
    std::unique_ptr<serve::RankShardedEngine> engine;
    std::vector<char> seen;          ///< pool row served at least once
    std::vector<double> first_seen;  ///< decision value of first serve
  };

  /// The engine for lifecycle corner (post_resize, post_death), built on
  /// first use.
  EngineSlot& slot_for(bool post_resize, bool post_death);
  /// Submit pool row `row` and wait out transient shed/reject (a
  /// respawning worker shows up as a short shed window). Returns the
  /// served prediction; throws after the retry budget.
  serve::RoutedPrediction submit_served(EngineSlot& slot, idx row);

  CheckResult check_parity(const FuzzStep& step);
  CheckResult check_routing(const FuzzStep& step);
  CheckResult check_resize_retention(const FuzzStep& step);
  CheckResult check_wire(const FuzzStep& step);

  std::shared_ptr<const serve::ModelBundle> bundle_;
  kernel::RealMatrix pool_;
  std::vector<double> reference_;
  FuzzLabConfig config_;
  Rng rng_;
  std::map<int, EngineSlot> slots_;
};

}  // namespace qkmps::soak
