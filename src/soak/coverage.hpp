#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace qkmps::soak {

/// Relation x engine-state coverage for the soak fuzzer, after the
/// metamorphic-coverage idea (PAPERS.md: arXiv:2508.16307): a fuzz run is
/// only as good as the *pairs* it exercises, so we instrument which
/// metamorphic relation each generated input pair checks and which engine
/// state it checks it in, then steer generation toward the cells nobody
/// has landed in yet.
///
/// Relations are the serving stack's metamorphic properties:
enum class Relation : std::uint8_t {
  /// Same request through engine vs sequential reference (or resubmitted
  /// to a warm engine) must be bitwise-identical.
  kBitwiseParity = 0,
  /// The router must map a point to the same shard every time the fleet
  /// topology is unchanged.
  kRoutingStability = 1,
  /// After add_shard/remove_shard, points whose consistent-hash owner did
  /// not change must keep their shard (cache retention across resize).
  kResizeRetention = 2,
  /// Envelope/reply codecs must round-trip, reject corruption, and decode
  /// previous-wire-version payloads.
  kWireTorture = 3,
};
inline constexpr std::size_t kNumRelations = 4;

const char* to_string(Relation relation);

/// The engine-state axes a relation can be exercised under. Each axis is
/// binary; a full state is one point in the 2^4 grid.
struct EngineState {
  bool warm_cache = false;   ///< request key seen before (memo/cache warm)
  bool post_resize = false;  ///< fleet resized (add/remove shard) earlier
  bool post_death = false;   ///< a worker was killed and respawned earlier
  bool wire_v2 = false;      ///< payload travelled as previous wire version

  std::uint8_t bits() const {
    return static_cast<std::uint8_t>((warm_cache ? 1 : 0) |
                                     (post_resize ? 2 : 0) |
                                     (post_death ? 4 : 0) |
                                     (wire_v2 ? 8 : 0));
  }
  static EngineState from_bits(std::uint8_t b) {
    return EngineState{(b & 1) != 0, (b & 2) != 0, (b & 4) != 0,
                       (b & 8) != 0};
  }
};
inline constexpr std::size_t kNumStates = 16;

/// Which axes are meaningful for a relation. Recording projects the
/// observed state onto the relation's mask, so e.g. kWireTorture — which
/// only cares about the wire-version axis — occupies 2 canonical cells,
/// not 16 aliases of the same check.
std::uint8_t axis_mask(Relation relation);

/// One cell of the coverage matrix: a relation plus the masked state
/// bits it was exercised under.
struct Cell {
  Relation relation = Relation::kBitwiseParity;
  std::uint8_t state_bits = 0;  ///< already projected through axis_mask

  bool operator==(const Cell& other) const {
    return relation == other.relation && state_bits == other.state_bits;
  }
  bool operator<(const Cell& other) const {
    if (relation != other.relation) return relation < other.relation;
    return state_bits < other.state_bits;
  }
};

std::string to_string(const Cell& cell);

/// The coverage ledger: counts how many checked pairs landed in each
/// relation x masked-state cell, against a target set of reachable cells.
/// Single-threaded (the fuzz loop owns it).
class RelationCoverageMap {
 public:
  /// `with_worker_death`: whether the run can reach post-death states
  /// (needs the socket transport; in-process runs can't kill workers).
  explicit RelationCoverageMap(bool with_worker_death = false);

  /// Record one checked pair. The state is projected through the
  /// relation's axis mask before counting.
  void record(Relation relation, const EngineState& state);

  std::uint64_t hits(Relation relation, const EngineState& state) const;
  std::uint64_t hits(const Cell& cell) const;

  /// All cells this run is expected to reach, sorted.
  const std::vector<Cell>& target_cells() const { return targets_; }
  /// Targets with zero hits so far, sorted.
  std::vector<Cell> uncovered_cells() const;

  std::size_t covered_count() const;
  std::size_t target_count() const { return targets_.size(); }
  bool complete() const { return covered_count() == targets_.size(); }
  /// Total recorded pairs across all cells.
  std::uint64_t total_pairs() const { return total_; }

  /// Human-readable relation x state matrix for reports.
  std::string render_text() const;

 private:
  static std::size_t index_of(const Cell& cell) {
    return static_cast<std::size_t>(cell.relation) * kNumStates +
           cell.state_bits;
  }

  std::vector<Cell> targets_;
  std::uint64_t counts_[kNumRelations * kNumStates] = {};
  std::uint64_t total_ = 0;
};

/// One planned fuzz step: check `relation` with the engine driven into
/// `state` first.
struct FuzzStep {
  Relation relation = Relation::kBitwiseParity;
  EngineState state;
};

/// Coverage-guided step planner. Guided mode picks uniformly among the
/// *uncovered* target cells, so every step lands somewhere new and the
/// map completes in exactly target_count() steps; once the map is full it
/// falls back to uniform-over-targets (soaking, not discovering).
/// Unguided mode ignores the map and samples targets with replacement —
/// the coupon-collector baseline the guided tests beat.
class GuidedMutator {
 public:
  GuidedMutator(const RelationCoverageMap& map, std::uint64_t seed,
                bool guided = true);

  FuzzStep next();

  bool guided() const { return guided_; }

 private:
  const RelationCoverageMap& map_;
  Rng rng_;
  bool guided_;
};

}  // namespace qkmps::soak
