#include "soak/coverage.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace qkmps::soak {

const char* to_string(Relation relation) {
  switch (relation) {
    case Relation::kBitwiseParity:
      return "bitwise-parity";
    case Relation::kRoutingStability:
      return "routing-stability";
    case Relation::kResizeRetention:
      return "resize-retention";
    case Relation::kWireTorture:
      return "wire-torture";
  }
  return "unknown";
}

std::uint8_t axis_mask(Relation relation) {
  // Axis bits: 1 = warm_cache, 2 = post_resize, 4 = post_death,
  // 8 = wire_v2 (EngineState::bits()).
  switch (relation) {
    case Relation::kBitwiseParity:
      // Parity must hold cold and warm, across resizes, and after a
      // worker death wiped a shard's memo. Wire version is invisible to
      // the predicted values (codecs carry doubles bit-exactly), so that
      // axis is projected away.
      return 1 | 2 | 4;
    case Relation::kRoutingStability:
      // Routing depends only on topology history; cache warmth can't
      // move a point between shards.
      return 2 | 4;
    case Relation::kResizeRetention:
      // Retention is *about* resize, so that axis is implicit in the
      // relation itself; the remaining question is whether it still
      // holds after a death/respawn cycle.
      return 4;
    case Relation::kWireTorture:
      // Codec torture cares only about which wire version is on the
      // cable.
      return 8;
  }
  return 0;
}

std::string to_string(const Cell& cell) {
  const EngineState s = EngineState::from_bits(cell.state_bits);
  const std::uint8_t mask = axis_mask(cell.relation);
  std::ostringstream os;
  os << to_string(cell.relation) << "[";
  bool first = true;
  const auto axis = [&](std::uint8_t bit, bool on, const char* name) {
    if ((mask & bit) == 0) return;
    if (!first) os << ",";
    first = false;
    os << (on ? "" : "!") << name;
  };
  axis(1, s.warm_cache, "warm");
  axis(2, s.post_resize, "resized");
  axis(4, s.post_death, "death");
  axis(8, s.wire_v2, "v2");
  os << "]";
  return os.str();
}

RelationCoverageMap::RelationCoverageMap(bool with_worker_death) {
  // The target set is the dedup'd projection of every reachable full
  // state through each relation's axis mask. Without the socket
  // transport the post-death axis is unreachable and those cells are
  // excluded from the targets (they would otherwise make complete()
  // unattainable for in-process runs).
  std::set<Cell> targets;
  for (std::size_t r = 0; r < kNumRelations; ++r) {
    const Relation relation = static_cast<Relation>(r);
    const std::uint8_t mask = axis_mask(relation);
    for (std::uint8_t bits = 0; bits < kNumStates; ++bits) {
      if (!with_worker_death && (bits & 4) != 0) continue;
      targets.insert(Cell{relation, static_cast<std::uint8_t>(bits & mask)});
    }
  }
  targets_.assign(targets.begin(), targets.end());
}

void RelationCoverageMap::record(Relation relation, const EngineState& state) {
  const Cell cell{relation,
                  static_cast<std::uint8_t>(state.bits() & axis_mask(relation))};
  ++counts_[index_of(cell)];
  ++total_;
}

std::uint64_t RelationCoverageMap::hits(Relation relation,
                                        const EngineState& state) const {
  return hits(Cell{relation, static_cast<std::uint8_t>(state.bits() &
                                                       axis_mask(relation))});
}

std::uint64_t RelationCoverageMap::hits(const Cell& cell) const {
  QKMPS_CHECK(cell.state_bits < kNumStates);
  return counts_[index_of(cell)];
}

std::vector<Cell> RelationCoverageMap::uncovered_cells() const {
  std::vector<Cell> out;
  for (const Cell& c : targets_)
    if (counts_[index_of(c)] == 0) out.push_back(c);
  return out;
}

std::size_t RelationCoverageMap::covered_count() const {
  std::size_t covered = 0;
  for (const Cell& c : targets_)
    if (counts_[index_of(c)] != 0) ++covered;
  return covered;
}

std::string RelationCoverageMap::render_text() const {
  std::ostringstream os;
  os << "relation x state coverage: " << covered_count() << "/"
     << targets_.size() << " cells, " << total_ << " pairs\n";
  for (const Cell& c : targets_)
    os << "  " << to_string(c) << " = " << counts_[index_of(c)] << "\n";
  return os.str();
}

GuidedMutator::GuidedMutator(const RelationCoverageMap& map,
                             std::uint64_t seed, bool guided)
    : map_(map), rng_(seed), guided_(guided) {}

FuzzStep GuidedMutator::next() {
  Cell cell;
  if (guided_) {
    const std::vector<Cell> open = map_.uncovered_cells();
    if (!open.empty()) {
      cell = open[rng_.uniform_int(open.size())];
    } else {
      const auto& targets = map_.target_cells();
      cell = targets[rng_.uniform_int(targets.size())];
    }
  } else {
    const auto& targets = map_.target_cells();
    cell = targets[rng_.uniform_int(targets.size())];
  }
  FuzzStep step;
  step.relation = cell.relation;
  step.state = EngineState::from_bits(cell.state_bits);
  return step;
}

}  // namespace qkmps::soak
