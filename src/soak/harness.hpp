#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "kernel/kernel_matrix.hpp"
#include "serve/sharded_engine.hpp"
#include "soak/arrival.hpp"
#include "soak/coverage.hpp"
#include "soak/slo.hpp"

namespace qkmps::soak {

/// Streaming soak driver configuration. The harness is open-loop in
/// shape (an ArrivalProcess paces the offered load) and closed-loop in
/// memory (a bounded in-flight window of futures), which together give
/// O(max_in_flight) resident cost however many requests the run streams.
struct SoakConfig {
  std::uint64_t seed = 42;
  std::uint64_t total_requests = 10'000;
  /// Resident-memory bound: at most this many unresolved futures at once;
  /// the oldest is harvested (blocking) when the window is full.
  std::size_t max_in_flight = 256;
  /// Requests draw uniformly from the first `num_unique` pool rows
  /// (0 = the whole pool). Small values make the soak duplicate-heavy so
  /// the engines' memos absorb most of a million-request run.
  idx num_unique = 0;
  /// Offered-load composition (see arrival.hpp). Empty = sustained
  /// 50k rps, i.e. effectively unpaced.
  std::vector<ShapeConfig> shapes;
  /// When true the submit loop sleeps until each request's arrival time;
  /// when false the arrival process only advances the virtual clock and
  /// the run goes as fast as the in-flight window allows.
  bool pace = false;
  /// Priority mix: each request is interactive with this probability...
  double interactive_fraction = 0.2;
  /// ...standard with this one, batch with the remainder.
  double standard_fraction = 0.5;
  /// Soak-level admission gate: a class is refused while the in-flight
  /// window is fuller than its gate fraction. Interactive is never
  /// gated; batch gives way first, then standard — strict priority
  /// ordering requires batch_gate <= standard_gate.
  double standard_gate_fraction = 0.95;
  double batch_gate_fraction = 0.80;
  SloTargets slo;
  /// Engine-state flags for coverage recording: what lifecycle history
  /// the driven engine carries (the harness cannot see resizes/deaths
  /// that happened before it got the engine).
  bool post_resize = false;
  bool post_death = false;
  /// Trailing window the report's throughput figure covers.
  double report_window_s = 10.0;
  /// Invoke the progress callback every this many harvested requests
  /// (0 = never).
  std::uint64_t progress_every = 0;
};

/// What a soak run produced. `lost` counts futures that resolved by
/// exception — the zero-gate of every soak bench. Violations are
/// metamorphic-relation breaks observed in-stream: parity (served value
/// vs reference / vs first serve, bitwise) and routing (served shard vs
/// first-observed shard for the same key).
struct SoakReport {
  std::uint64_t attempted = 0;      ///< requests the generator produced
  std::uint64_t gated = 0;          ///< refused by the soak priority gate
  std::uint64_t lost = 0;
  std::uint64_t parity_violations = 0;
  std::uint64_t routing_violations = 0;
  std::uint64_t peak_in_flight = 0;
  double elapsed_seconds = 0.0;
  SloSnapshot slo;
  bool reconciled = false;  ///< SLO ledger vs engine counter deltas
  std::string reconcile_detail;
};

/// Drives a serving engine through a streamed request sequence. The
/// request source is the pool handed in at construction (rows drawn with
/// replacement), so resident workload state is the pool plus O(num_unique)
/// first-seen bookkeeping plus the in-flight window — independent of
/// total_requests. Works against both sharded frontends through their
/// common surface (submit -> future<RoutedPrediction>, stats with the
/// shared counter names).
class SoakHarness {
 public:
  /// `reference[i]`, when non-empty, is the sequential-pipeline decision
  /// value for pool row i: cold serves are then parity-checked bitwise
  /// in-stream. Empty skips cold parity (warm parity — first serve vs
  /// re-serve — still runs).
  SoakHarness(kernel::RealMatrix pool, std::vector<double> reference,
              SoakConfig config);

  /// Runs the soak against `engine` (serve::ShardedEngine or
  /// serve::RankShardedEngine). `coverage`, when non-null, receives one
  /// relation-cell record per in-stream check; `progress`, when non-null,
  /// fires every progress_every harvested requests with a live snapshot.
  template <typename Engine>
  SoakReport run(Engine& engine, RelationCoverageMap* coverage = nullptr,
                 const std::function<void(const SoakReport&)>& progress = {}) {
    const SloAccountant::EngineTotals before =
        SloAccountant::totals(engine.stats());
    return run_impl(
        [&engine](std::vector<double> f) {
          return engine.submit(std::move(f));
        },
        [&engine, before] {
          SloAccountant::EngineTotals t = SloAccountant::totals(engine.stats());
          // The ledger only saw this run's traffic; reconcile against the
          // engine's deltas, not its lifetime totals.
          t.submitted -= before.submitted;
          t.completed -= before.completed;
          t.rejected -= before.rejected;
          t.shed -= before.shed;
          return t;
        },
        coverage, progress);
  }

  const SoakConfig& config() const { return config_; }

 private:
  SoakReport run_impl(
      const std::function<std::future<serve::RoutedPrediction>(
          std::vector<double>)>& submit,
      const std::function<SloAccountant::EngineTotals()>& engine_totals,
      RelationCoverageMap* coverage,
      const std::function<void(const SoakReport&)>& progress);

  kernel::RealMatrix pool_;
  std::vector<double> reference_;
  SoakConfig config_;
};

}  // namespace qkmps::soak
