#include "soak/fuzz.hpp"

#include <signal.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "serve/shard_wire.hpp"
#include "util/error.hpp"

namespace qkmps::soak {

namespace {

bool bitwise_equal(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

std::vector<double> pool_row(const kernel::RealMatrix& pool, idx row) {
  return std::vector<double>(pool.row(row), pool.row(row) + pool.cols());
}

}  // namespace

FuzzLab::FuzzLab(serve::ModelBundle bundle, kernel::RealMatrix pool,
                 std::vector<double> reference, FuzzLabConfig config)
    : bundle_(std::make_shared<const serve::ModelBundle>(std::move(bundle))),
      pool_(std::move(pool)),
      reference_(std::move(reference)),
      config_(config),
      rng_(config.seed) {
  QKMPS_CHECK_MSG(pool_.rows() > 0, "fuzz lab needs a non-empty pool");
  QKMPS_CHECK_MSG(static_cast<idx>(reference_.size()) == pool_.rows(),
                  "one reference value per pool row");
  QKMPS_CHECK_MSG(config_.worker_path.empty() == config_.bundle_dir.empty(),
                  "socket mode needs both worker_path and bundle_dir");
}

FuzzLab::~FuzzLab() = default;

FuzzLab::EngineSlot& FuzzLab::slot_for(bool post_resize, bool post_death) {
  const int key = (post_resize ? 1 : 0) | (post_death ? 2 : 0);
  auto it = slots_.find(key);
  if (it != slots_.end()) return it->second;
  QKMPS_CHECK_MSG(!post_death || supports_worker_death(),
                  "post-death states need the socket transport");

  serve::RankShardedEngineConfig cfg;
  cfg.num_shards = config_.num_shards;
  cfg.router = {serve::RouterKind::kConsistentHash, config_.virtual_nodes};
  cfg.engine.num_threads = 1;  // lab engines share the fuzz host
  if (post_death) {
    cfg.transport = serve::TransportKind::kSocket;
    cfg.socket.worker_path = config_.worker_path;
    cfg.socket.bundle_dir = config_.bundle_dir + "/slot" + std::to_string(key);
    cfg.socket.respawn = true;
    cfg.socket.respawn_backoff = std::chrono::milliseconds(50);
  }
  EngineSlot slot;
  slot.engine =
      std::make_unique<serve::RankShardedEngine>(bundle_, cfg);
  slot.seen.assign(static_cast<std::size_t>(pool_.rows()), 0);
  slot.first_seen.assign(static_cast<std::size_t>(pool_.rows()), 0.0);

  if (post_death) {
    // Kill shard 0's worker and wait for the monitor to heal the slot so
    // later checks run against a genuinely respawned fleet.
    const long victim = slot.engine->worker_pid(0);
    QKMPS_CHECK_MSG(victim > 0, "no live worker to kill for post-death state");
    ::kill(static_cast<pid_t>(victim), SIGKILL);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (true) {
      const serve::RankShardedStats st = slot.engine->stats();
      if (st.shards[0].respawns >= 1 && st.shards[0].alive) break;
      QKMPS_CHECK_MSG(std::chrono::steady_clock::now() < deadline,
                      "worker respawn did not complete in 30s");
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  if (post_resize) slot.engine->add_shard(1.0);
  return slots_.emplace(key, std::move(slot)).first->second;
}

serve::RoutedPrediction FuzzLab::submit_served(EngineSlot& slot, idx row) {
  // A respawning worker sheds its keyspace for a short window and a full
  // ingress rejects; both are expected soak weather, so retry with a
  // bounded budget rather than failing the relation on scheduling noise.
  for (int attempt = 0; attempt < 200; ++attempt) {
    serve::RoutedPrediction r =
        slot.engine->submit(pool_row(pool_, row)).get();
    if (r.status == serve::ServeStatus::kServed) {
      if (!slot.seen[static_cast<std::size_t>(row)]) {
        slot.seen[static_cast<std::size_t>(row)] = 1;
        slot.first_seen[static_cast<std::size_t>(row)] =
            r.prediction.decision_value;
      }
      return r;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  QKMPS_CHECK_MSG(false, "request for pool row "
                             << row << " never served after 200 attempts");
  __builtin_unreachable();
}

CheckResult FuzzLab::run(const FuzzStep& step, RelationCoverageMap& map) {
  CheckResult result;
  switch (step.relation) {
    case Relation::kBitwiseParity:
      result = check_parity(step);
      break;
    case Relation::kRoutingStability:
      result = check_routing(step);
      break;
    case Relation::kResizeRetention:
      result = check_resize_retention(step);
      break;
    case Relation::kWireTorture:
      result = check_wire(step);
      break;
  }
  map.record(result.relation, result.state);
  return result;
}

CheckResult FuzzLab::check_parity(const FuzzStep& step) {
  CheckResult res;
  res.relation = Relation::kBitwiseParity;
  res.state = step.state;
  EngineSlot& slot = slot_for(step.state.post_resize, step.state.post_death);

  // Warm wants a row this engine has served before; cold wants a fresh
  // one. Scan from a random start so the fuzz run spreads over the pool.
  const idx n = pool_.rows();
  idx row = static_cast<idx>(rng_.uniform_int(static_cast<std::uint64_t>(n)));
  for (idx tries = 0; tries < n; ++tries, row = (row + 1) % n) {
    const bool seen = slot.seen[static_cast<std::size_t>(row)] != 0;
    if (seen == step.state.warm_cache) break;
  }
  if (step.state.warm_cache && !slot.seen[static_cast<std::size_t>(row)]) {
    // Nothing warm yet (or the whole pool is cold): warm this row first.
    submit_served(slot, row);
  }
  // Every row may already be warm on a long-soaked engine; a cold check
  // then degrades to warm, and the recorded state says so.
  res.state.warm_cache = slot.seen[static_cast<std::size_t>(row)] != 0;

  const serve::RoutedPrediction r = submit_served(slot, row);
  const double expect = reference_[static_cast<std::size_t>(row)];
  if (!bitwise_equal(r.prediction.decision_value, expect)) {
    std::ostringstream os;
    os << "parity broke on pool row " << row << ": engine "
       << r.prediction.decision_value << " reference " << expect;
    res.detail = os.str();
    return res;
  }
  if (res.state.warm_cache &&
      !bitwise_equal(r.prediction.decision_value,
                     slot.first_seen[static_cast<std::size_t>(row)])) {
    std::ostringstream os;
    os << "warm re-serve of pool row " << row
       << " disagrees with its first serve";
    res.detail = os.str();
    return res;
  }
  res.passed = true;
  return res;
}

CheckResult FuzzLab::check_routing(const FuzzStep& step) {
  CheckResult res;
  res.relation = Relation::kRoutingStability;
  res.state = step.state;
  EngineSlot& slot = slot_for(step.state.post_resize, step.state.post_death);

  const idx row = static_cast<idx>(
      rng_.uniform_int(static_cast<std::uint64_t>(pool_.rows())));
  const std::vector<double> x = pool_row(pool_, row);
  const int s1 = slot.engine->shard_for(x);
  const serve::RoutedPrediction r = submit_served(slot, row);
  const int s2 = slot.engine->shard_for(x);
  if (s1 != s2 || r.shard != s1) {
    std::ostringstream os;
    os << "routing moved for pool row " << row << ": shard_for " << s1
       << " then " << s2 << ", served by " << r.shard;
    res.detail = os.str();
    return res;
  }
  res.passed = true;
  return res;
}

CheckResult FuzzLab::check_resize_retention(const FuzzStep& step) {
  CheckResult res;
  res.relation = Relation::kResizeRetention;
  res.state = step.state;

  // The engine-level form grows a real fleet; past max_fleet fall back to
  // the router-level form (same ring math, no processes) so soaking this
  // cell forever cannot grow the fleet without bound.
  EngineSlot* slot = nullptr;
  if (!step.state.post_death || supports_worker_death()) {
    EngineSlot& s = slot_for(true, step.state.post_death);
    if (s.engine->num_shards() < config_.max_fleet) slot = &s;
  }

  std::vector<int> before(static_cast<std::size_t>(pool_.rows()));
  if (slot != nullptr) {
    for (idx i = 0; i < pool_.rows(); ++i)
      before[static_cast<std::size_t>(i)] =
          slot->engine->shard_for(pool_row(pool_, i));
    slot->engine->add_shard(1.0);
    const int fresh = static_cast<int>(slot->engine->num_shards()) - 1;
    for (idx i = 0; i < pool_.rows(); ++i) {
      const int after = slot->engine->shard_for(pool_row(pool_, i));
      if (after != before[static_cast<std::size_t>(i)] && after != fresh) {
        std::ostringstream os;
        os << "engine resize moved pool row " << i << " from shard "
           << before[static_cast<std::size_t>(i)] << " to " << after
           << " (not the new shard " << fresh << ")";
        res.detail = os.str();
        return res;
      }
    }
  } else {
    serve::ConsistentHashRouter router(config_.num_shards,
                                       config_.virtual_nodes);
    for (idx i = 0; i < pool_.rows(); ++i)
      before[static_cast<std::size_t>(i)] = router.shard_for(pool_row(pool_, i));
    router.add_shard(1.0);
    const int fresh = static_cast<int>(router.num_shards()) - 1;
    for (idx i = 0; i < pool_.rows(); ++i) {
      const int after = router.shard_for(pool_row(pool_, i));
      if (after != before[static_cast<std::size_t>(i)] && after != fresh) {
        std::ostringstream os;
        os << "router resize moved pool row " << i << " from shard "
           << before[static_cast<std::size_t>(i)] << " to " << after
           << " (not the new shard " << fresh << ")";
        res.detail = os.str();
        return res;
      }
    }
  }
  res.passed = true;
  return res;
}

CheckResult FuzzLab::check_wire(const FuzzStep& step) {
  CheckResult res;
  res.relation = Relation::kWireTorture;
  res.state = step.state;

  const idx row = static_cast<idx>(
      rng_.uniform_int(static_cast<std::uint64_t>(pool_.rows())));
  serve::ShardEnvelope env;
  env.kind = serve::ShardEnvelope::Kind::kRequest;
  env.id = rng_.next();
  env.features = pool_row(pool_, row);
  env.trace_id = rng_.next() | 1;  // nonzero: traced

  std::vector<std::uint8_t> bytes = serve::encode_envelope(env);
  const auto fail = [&](const std::string& what) {
    res.detail = what;
    return res;
  };

  if (step.state.wire_v2) {
    // A v2 peer's envelope is exactly ours minus the 8-byte trace tail;
    // the decoder must accept it and default to untraced.
    std::vector<std::uint8_t> v2(bytes.begin(), bytes.end() - 8);
    serve::ShardEnvelope back;
    try {
      back = serve::decode_envelope(v2);
    } catch (const std::exception& e) {
      return fail(std::string("v2-shaped envelope refused: ") + e.what());
    }
    if (back.trace_id != 0) return fail("v2 envelope decoded as traced");
    if (back.id != env.id || back.features != env.features)
      return fail("v2 envelope round-trip mangled the v2 fields");
  } else {
    serve::ShardEnvelope back;
    try {
      back = serve::decode_envelope(bytes);
    } catch (const std::exception& e) {
      return fail(std::string("v3 envelope round-trip threw: ") + e.what());
    }
    if (back.id != env.id || back.trace_id != env.trace_id ||
        back.features != env.features)
      return fail("v3 envelope round-trip mangled a field");
  }

  // Torture proper, both versions: truncation at a random interior cut
  // and a hostile kind byte must throw, never crash or succeed.
  if (bytes.size() > 1) {
    const std::size_t keep =
        1 + rng_.uniform_int(static_cast<std::uint64_t>(bytes.size() - 8) - 1);
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(keep));
    if (keep != bytes.size() - 8) {  // the v2 boundary is the one legal cut
      try {
        serve::decode_envelope(cut);
        return fail("truncated envelope decoded without error");
      } catch (const std::exception&) {
      }
    }
  }
  std::vector<std::uint8_t> hostile = bytes;
  hostile[0] = 0xFF;
  try {
    serve::decode_envelope(hostile);
    return fail("hostile kind byte decoded without error");
  } catch (const std::exception&) {
  }

  res.passed = true;
  return res;
}

}  // namespace qkmps::soak
