#pragma once

#include <cstdint>
#include <vector>

namespace qkmps::soak {

/// Composable offered-load shapes for the streaming soak harness
/// (DESIGN.md §10). A shape contributes an instantaneous request rate
/// r(t); an ArrivalProcess sums its shapes' rates and integrates the
/// composite deterministically, one inter-arrival gap at a time — O(1)
/// state, no materialized schedule, which is what lets a soak run pace
/// millions of arrivals. The workload-layer ArrivalPattern (steady/
/// burst/ramp) stays the CI-scale vocabulary; these shapes model the
/// long-horizon traffic the north star cares about: days of load with
/// troughs, peaks, and flash crowds.
enum class ShapeKind : std::uint8_t {
  kSustained,   ///< constant rate_rps forever
  kDiurnal,     ///< sinusoidal day cycle between trough and peak
  kFlashCrowd,  ///< baseline with periodic multiplier spikes
};

const char* to_string(ShapeKind kind);

struct ShapeConfig {
  ShapeKind kind = ShapeKind::kSustained;
  /// kSustained: the constant rate. kDiurnal: the peak rate. kFlashCrowd:
  /// the baseline rate outside crowds.
  double rate_rps = 1000.0;
  /// kDiurnal: one synthetic "day" in seconds.
  double period_s = 60.0;
  /// kDiurnal: trough rate as a fraction of the peak (rate oscillates in
  /// [trough_fraction * rate_rps, rate_rps]).
  double trough_fraction = 0.25;
  /// kFlashCrowd: a crowd fires once per this interval...
  double crowd_every_s = 30.0;
  /// ...lasts this long (must fit inside the interval)...
  double crowd_duration_s = 2.0;
  /// ...and multiplies the baseline while active.
  double crowd_multiplier = 8.0;
};

/// Shorthand constructors for the three shapes.
ShapeConfig sustained(double rate_rps);
ShapeConfig diurnal(double peak_rps, double period_s,
                    double trough_fraction = 0.25);
ShapeConfig flash_crowd(double base_rps, double every_s, double duration_s,
                        double multiplier = 8.0);

/// Deterministic arrival-time generator over a composition of shapes.
/// Single-consumer mutable state (next_arrival_us advances the clock);
/// rate_at is pure and safe to call concurrently.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(std::vector<ShapeConfig> shapes);

  /// Sum of the shapes' instantaneous rates at time t (seconds). Always
  /// strictly positive for a validly constructed process.
  double rate_at(double t_seconds) const;

  /// Arrival offset (microseconds since the stream epoch) of the next
  /// request: steps the internal clock by 1 / rate(t).
  double next_arrival_us();

  double now_seconds() const { return t_s_; }
  const std::vector<ShapeConfig>& shapes() const { return shapes_; }

 private:
  std::vector<ShapeConfig> shapes_;
  double t_s_ = 0.0;
};

}  // namespace qkmps::soak
