#pragma once

#include <vector>

#include "circuit/ansatz.hpp"
#include "kernel/kernel_matrix.hpp"
#include "mps/simulator.hpp"
#include "util/timer.hpp"

namespace qkmps::kernel {

/// Everything needed to evaluate the quantum kernel on data: the feature
/// map hyperparameters and the simulator configuration.
struct QuantumKernelConfig {
  circuit::AnsatzParams ansatz;
  mps::SimulatorConfig sim;
};

/// Resource/accounting record for one Gram-matrix computation; the phase
/// totals ("simulation", "inner_product", "communication") are the Fig. 8
/// runtime breakdown.
struct GramStats {
  PhaseTimer phases;
  idx circuits_simulated = 0;
  idx inner_products = 0;
  double avg_max_bond = 0.0;          ///< Table I column
  std::size_t avg_mps_bytes = 0;      ///< Table I column
  double total_discarded_weight = 0.0;
};

/// Simulates the feature-map circuit for each row of X (features on
/// columns, already rescaled to (0,2)); returns one MPS per data point.
std::vector<mps::Mps> simulate_states(const QuantumKernelConfig& config,
                                      const RealMatrix& x,
                                      GramStats* stats = nullptr);

/// Symmetric training Gram matrix K_ij = |<psi(x_i)|psi(x_j)>|^2 (Eq. 1),
/// computed sequentially (exploiting symmetry: N(N-1)/2 inner products).
RealMatrix gram_matrix(const QuantumKernelConfig& config, const RealMatrix& x,
                       GramStats* stats = nullptr);

/// Rectangular inference kernel K_ij = |<psi(test_i)|psi(train_j)>|^2.
RealMatrix cross_kernel(const QuantumKernelConfig& config,
                        const RealMatrix& x_test, const RealMatrix& x_train,
                        GramStats* stats = nullptr);

/// Same two entry points but computed from already-simulated states.
RealMatrix gram_from_states(const std::vector<mps::Mps>& states,
                            linalg::ExecPolicy policy,
                            GramStats* stats = nullptr);
RealMatrix cross_from_states(const std::vector<mps::Mps>& test_states,
                             const std::vector<mps::Mps>& train_states,
                             linalg::ExecPolicy policy,
                             GramStats* stats = nullptr);

}  // namespace qkmps::kernel
