#include "kernel/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/symeig.hpp"
#include "util/error.hpp"

namespace qkmps::kernel {

ConcentrationReport concentration(const RealMatrix& k) {
  QKMPS_CHECK(k.rows() == k.cols() && k.rows() >= 2);
  ConcentrationReport r;
  r.min_off_diagonal = 2.0;
  r.max_off_diagonal = -1.0;
  double sum = 0.0, sum_sq = 0.0;
  idx count = 0;
  for (idx i = 0; i < k.rows(); ++i)
    for (idx j = i + 1; j < k.cols(); ++j) {
      const double v = k(i, j);
      sum += v;
      sum_sq += v * v;
      r.min_off_diagonal = std::min(r.min_off_diagonal, v);
      r.max_off_diagonal = std::max(r.max_off_diagonal, v);
      ++count;
    }
  const double n = static_cast<double>(count);
  r.mean_off_diagonal = sum / n;
  r.var_off_diagonal = sum_sq / n - r.mean_off_diagonal * r.mean_off_diagonal;
  return r;
}

double target_alignment(const RealMatrix& k, const std::vector<int>& y) {
  const idx n = k.rows();
  QKMPS_CHECK(k.cols() == n && static_cast<idx>(y.size()) == n);
  double ky = 0.0, kk = 0.0;
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j) {
      const double yy = static_cast<double>(y[static_cast<std::size_t>(i)]) *
                        static_cast<double>(y[static_cast<std::size_t>(j)]);
      ky += k(i, j) * yy;
      kk += k(i, j) * k(i, j);
    }
  const double yy_norm = static_cast<double>(n);  // ||y y^T||_F = n
  QKMPS_CHECK(kk > 0.0);
  return ky / (std::sqrt(kk) * yy_norm);
}

std::vector<double> kernel_spectrum(const RealMatrix& k) {
  return linalg::symmetric_eigenvalues(k);
}

double min_eigenvalue(const RealMatrix& k) {
  const auto w = kernel_spectrum(k);
  return w.back();
}

double effective_dimension(const RealMatrix& k) {
  const auto w = kernel_spectrum(k);
  double s = 0.0, s2 = 0.0;
  for (double v : w) {
    const double clipped = std::max(v, 0.0);
    s += clipped;
    s2 += clipped * clipped;
  }
  QKMPS_CHECK(s2 > 0.0);
  return s * s / s2;
}

}  // namespace qkmps::kernel
