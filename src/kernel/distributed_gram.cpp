#include "kernel/distributed_gram.hpp"

#include <cmath>
#include <vector>

#include "mps/inner_product.hpp"
#include "parallel/partition.hpp"
#include "parallel/rank_runtime.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace qkmps::kernel {

namespace {

using parallel::Comm;
using parallel::Range;
using parallel::RankRuntime;

/// One computed tile travelling to the gather rank.
struct TileResult {
  idx r0 = 0, r1 = 0, c0 = 0, c1 = 0;
  std::vector<double> values;  ///< row-major (r1-r0) x (c1-c0)
};

RealMatrix slice_rows(const RealMatrix& x, Range r) {
  RealMatrix out(r.size(), x.cols());
  for (idx i = 0; i < r.size(); ++i)
    for (idx j = 0; j < x.cols(); ++j) out(i, j) = x(r.begin + i, j);
  return out;
}

std::vector<mps::Mps> simulate_block(const QuantumKernelConfig& config,
                                     const RealMatrix& x, Range r,
                                     GramStats& stats) {
  const RealMatrix block = slice_rows(x, r);
  return simulate_states(config, block, &stats);
}

TileResult compute_tile(const std::vector<mps::Mps>& rows, Range rr,
                        const std::vector<mps::Mps>& cols, Range cr,
                        bool diagonal, linalg::ExecPolicy policy,
                        GramStats& stats) {
  TileResult t;
  t.r0 = rr.begin;
  t.r1 = rr.end;
  t.c0 = cr.begin;
  t.c1 = cr.end;
  t.values.assign(static_cast<std::size_t>(rr.size() * cr.size()), 0.0);
  // Thread-CPU time: stays meaningful when ranks oversubscribe the cores.
  ThreadCpuTimer timer;
  idx count = 0;
  for (idx i = 0; i < rr.size(); ++i) {
    for (idx j = 0; j < cr.size(); ++j) {
      if (diagonal && j < i) continue;  // symmetric: mirror at assembly
      double v;
      if (diagonal && i == j) {
        v = 1.0;
      } else {
        v = mps::overlap_squared(rows[static_cast<std::size_t>(i)],
                                 cols[static_cast<std::size_t>(j)], policy);
        ++count;
      }
      t.values[static_cast<std::size_t>(i * cr.size() + j)] = v;
    }
  }
  stats.phases.add("inner_product", timer.seconds());
  stats.inner_products += count;
  return t;
}

void assemble(RealMatrix& k, const TileResult& t, bool mirror) {
  for (idx i = t.r0; i < t.r1; ++i)
    for (idx j = t.c0; j < t.c1; ++j) {
      const double v =
          t.values[static_cast<std::size_t>((i - t.r0) * (t.c1 - t.c0) + (j - t.c0))];
      if (mirror && t.r0 == t.c0 && j < i) continue;  // lower half unset
      k(i, j) = v;
      if (mirror) k(j, i) = v;
    }
}

RealMatrix no_messaging_gram(const QuantumKernelConfig& config,
                             const RealMatrix& x, int num_ranks,
                             GramStats* stats) {
  const idx n = x.rows();
  // Upper-triangular tiles of a g x g grid, dealt round-robin to ranks
  // (Fig. 4a, plus the symmetric halving described in Sec. II-D).
  idx g = 1;
  while (g * (g + 1) / 2 < num_ranks) ++g;
  const auto ranges = parallel::split_evenly(n, g);

  struct TileCoord {
    idx r, c;
  };
  std::vector<std::vector<TileCoord>> owned(static_cast<std::size_t>(num_ranks));
  {
    idx next = 0;
    for (idx r = 0; r < g; ++r)
      for (idx c = r; c < g; ++c) {
        owned[static_cast<std::size_t>(next % num_ranks)].push_back({r, c});
        ++next;
      }
  }

  RealMatrix k(n, n);
  util::Mutex merge_mu;
  GramStats merged;

  RankRuntime rt(num_ranks);
  rt.run([&](Comm& comm) {
    GramStats local;
    std::vector<TileResult> results;
    for (const TileCoord tc : owned[static_cast<std::size_t>(comm.rank())]) {
      const Range rr = ranges[static_cast<std::size_t>(tc.r)];
      const Range cr = ranges[static_cast<std::size_t>(tc.c)];
      if (rr.size() == 0 || cr.size() == 0) continue;
      // Simulate every state this tile touches — the strategy's signature
      // duplication cost: row AND column states, locally.
      const auto row_states = simulate_block(config, x, rr, local);
      const bool diagonal = tc.r == tc.c;
      if (diagonal) {
        results.push_back(compute_tile(row_states, rr, row_states, cr, true,
                                       config.sim.policy, local));
      } else {
        const auto col_states = simulate_block(config, x, cr, local);
        results.push_back(compute_tile(row_states, rr, col_states, cr, false,
                                       config.sim.policy, local));
      }
    }
    {
      util::MutexLock lock(merge_mu);
      for (const auto& t : results) assemble(k, t, /*mirror=*/true);
      merged.phases.merge(local.phases);
      merged.circuits_simulated += local.circuits_simulated;
      merged.inner_products += local.inner_products;
    }
  });

  if (stats != nullptr) {
    stats->phases.merge(merged.phases);
    stats->circuits_simulated += merged.circuits_simulated;
    stats->inner_products += merged.inner_products;
  }
  return k;
}

RealMatrix round_robin_gram(const QuantumKernelConfig& config,
                            const RealMatrix& x, int num_ranks,
                            GramStats* stats) {
  const idx n = x.rows();
  const auto blocks = parallel::split_evenly(n, num_ranks);
  const int k = num_ranks;

  RealMatrix km(n, n);
  util::Mutex merge_mu;
  GramStats merged;

  RankRuntime rt(num_ranks);
  rt.run([&](Comm& comm) {
    const int p = comm.rank();
    GramStats local;
    const Range my_range = blocks[static_cast<std::size_t>(p)];

    // Phase 1: each circuit simulated exactly once (Fig. 4b, step 1).
    std::vector<mps::Mps> resident =
        simulate_block(config, x, my_range, local);

    std::vector<TileResult> results;
    // Diagonal tile from local states.
    results.push_back(compute_tile(resident, my_range, resident, my_range,
                                   true, config.sim.policy, local));

    // Ring steps: the travelling block moves to the left neighbour; after
    // step s, rank p holds block (p+s) mod k. Symmetry lets the ring stop
    // after floor(k/2) steps (the paper's "send half of its states" trade).
    std::vector<mps::Mps> travelling = resident;
    Range trav_range = my_range;
    const int steps = k / 2;
    for (int s = 1; s <= steps; ++s) {
      const int dst = (p - 1 + k) % k;
      const int src = (p + 1) % k;
      Timer comm_timer;
      comm.send(dst, std::pair<std::pair<idx, idx>, std::vector<mps::Mps>>(
                         {trav_range.begin, trav_range.end}, std::move(travelling)));
      auto msg =
          comm.recv<std::pair<std::pair<idx, idx>, std::vector<mps::Mps>>>(src);
      local.phases.add("communication", comm_timer.seconds());
      trav_range = Range{msg.first.first, msg.first.second};
      travelling = std::move(msg.second);

      // For even k the final step pairs each block with its antipode; only
      // the lower-index rank of each pair computes it.
      const bool duplicate_final = (k % 2 == 0) && (s == steps) && (p >= k / 2);
      if (!duplicate_final && trav_range.size() > 0 && my_range.size() > 0) {
        results.push_back(compute_tile(resident, my_range, travelling,
                                       trav_range, false, config.sim.policy,
                                       local));
      }
    }

    {
      util::MutexLock lock(merge_mu);
      for (const auto& t : results) assemble(km, t, /*mirror=*/true);
      merged.phases.merge(local.phases);
      merged.circuits_simulated += local.circuits_simulated;
      merged.inner_products += local.inner_products;
    }
  });

  if (stats != nullptr) {
    stats->phases.merge(merged.phases);
    stats->circuits_simulated += merged.circuits_simulated;
    stats->inner_products += merged.inner_products;
  }
  return km;
}

}  // namespace

RealMatrix distributed_gram_matrix(const QuantumKernelConfig& config,
                                   const RealMatrix& x, int num_ranks,
                                   DistributionStrategy strategy,
                                   GramStats* stats) {
  QKMPS_CHECK(num_ranks >= 1);
  if (strategy == DistributionStrategy::NoMessaging)
    return no_messaging_gram(config, x, num_ranks, stats);
  return round_robin_gram(config, x, num_ranks, stats);
}

RealMatrix distributed_cross_kernel(const QuantumKernelConfig& config,
                                    const RealMatrix& x_test,
                                    const RealMatrix& x_train, int num_ranks,
                                    GramStats* stats) {
  QKMPS_CHECK(num_ranks >= 1);
  const idx nt = x_test.rows();
  const idx nr = x_train.rows();
  const auto test_blocks = parallel::split_evenly(nt, num_ranks);
  const auto train_blocks = parallel::split_evenly(nr, num_ranks);
  const int k = num_ranks;

  RealMatrix km(nt, nr);
  util::Mutex merge_mu;
  GramStats merged;

  RankRuntime rt(num_ranks);
  rt.run([&](Comm& comm) {
    const int p = comm.rank();
    GramStats local;
    const Range my_rows = test_blocks[static_cast<std::size_t>(p)];
    const Range my_cols = train_blocks[static_cast<std::size_t>(p)];

    std::vector<mps::Mps> test_states =
        simulate_block(config, x_test, my_rows, local);
    std::vector<mps::Mps> travelling =
        simulate_block(config, x_train, my_cols, local);
    Range trav_range = my_cols;

    std::vector<TileResult> results;
    for (int s = 0; s < k; ++s) {
      if (my_rows.size() > 0 && trav_range.size() > 0) {
        results.push_back(compute_tile(test_states, my_rows, travelling,
                                       trav_range, false, config.sim.policy,
                                       local));
      }
      if (s + 1 == k) break;
      const int dst = (p - 1 + k) % k;
      const int src = (p + 1) % k;
      Timer comm_timer;
      comm.send(dst, std::pair<std::pair<idx, idx>, std::vector<mps::Mps>>(
                         {trav_range.begin, trav_range.end}, std::move(travelling)));
      auto msg =
          comm.recv<std::pair<std::pair<idx, idx>, std::vector<mps::Mps>>>(src);
      local.phases.add("communication", comm_timer.seconds());
      trav_range = Range{msg.first.first, msg.first.second};
      travelling = std::move(msg.second);
    }

    {
      util::MutexLock lock(merge_mu);
      for (const auto& t : results) assemble(km, t, /*mirror=*/false);
      merged.phases.merge(local.phases);
      merged.circuits_simulated += local.circuits_simulated;
      merged.inner_products += local.inner_products;
    }
  });

  if (stats != nullptr) {
    stats->phases.merge(merged.phases);
    stats->circuits_simulated += merged.circuits_simulated;
    stats->inner_products += merged.inner_products;
  }
  return km;
}

}  // namespace qkmps::kernel
