#pragma once

#include <vector>

#include "kernel/kernel_matrix.hpp"

namespace qkmps::kernel {

/// Kernel-quality diagnostics backing the paper's discussion of
/// expressivity, concentration and trainability (Secs. III-B and IV).
struct ConcentrationReport {
  double mean_off_diagonal = 0.0;
  double var_off_diagonal = 0.0;
  double min_off_diagonal = 0.0;
  double max_off_diagonal = 0.0;
};

/// Statistics of the off-diagonal kernel entries. Exponential
/// concentration (Thanasilp et al., the paper's ref [15]) manifests as
/// mean and variance collapsing toward 0 as depth/expressivity grows —
/// the mechanism behind Table III's AUC collapse.
ConcentrationReport concentration(const RealMatrix& k);

/// Kernel-target alignment A(K, y y^T) = <K, Y>_F / (||K||_F ||Y||_F),
/// a standard label-informed kernel quality score in [-1, 1]; higher means
/// the kernel geometry matches the labels better.
double target_alignment(const RealMatrix& k, const std::vector<int>& y);

/// Full eigenspectrum of a symmetric kernel, descending.
std::vector<double> kernel_spectrum(const RealMatrix& k);

/// Smallest eigenvalue; >= -tol certifies positive semidefiniteness
/// (fidelity kernels are PSD by construction; shot-estimated ones need not
/// be, which is exactly what this diagnostic is for).
double min_eigenvalue(const RealMatrix& k);

/// Effective dimension (sum w_i)^2 / sum w_i^2 of the kernel spectrum —
/// how many directions the feature space actually uses. Collapses to ~1
/// for concentrated kernels.
double effective_dimension(const RealMatrix& k);

}  // namespace qkmps::kernel
