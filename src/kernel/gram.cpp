#include "kernel/gram.hpp"

#include <algorithm>
#include <cmath>

#include "mps/inner_product.hpp"
#include "util/error.hpp"

namespace qkmps::kernel {

namespace {

double max_abs_diff_impl(const RealMatrix& a, const RealMatrix& b) {
  QKMPS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (idx i = 0; i < a.rows(); ++i)
    for (idx j = 0; j < a.cols(); ++j)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

std::vector<double> row_features(const RealMatrix& x, idx i) {
  return std::vector<double>(x.row(i), x.row(i) + x.cols());
}

}  // namespace

double max_abs_diff(const RealMatrix& a, const RealMatrix& b) {
  return max_abs_diff_impl(a, b);
}

double symmetry_defect(const RealMatrix& k) {
  QKMPS_CHECK(k.rows() == k.cols());
  double m = 0.0;
  for (idx i = 0; i < k.rows(); ++i)
    for (idx j = i + 1; j < k.cols(); ++j)
      m = std::max(m, std::abs(k(i, j) - k(j, i)));
  return m;
}

std::vector<mps::Mps> simulate_states(const QuantumKernelConfig& config,
                                      const RealMatrix& x, GramStats* stats) {
  QKMPS_CHECK_MSG(x.cols() == config.ansatz.num_features,
                  "dataset has " << x.cols() << " features, ansatz expects "
                                 << config.ansatz.num_features);
  const mps::MpsSimulator sim(config.sim);
  std::vector<mps::Mps> states;
  states.reserve(static_cast<std::size_t>(x.rows()));

  ThreadCpuTimer timer;
  double bond_sum = 0.0;
  std::size_t bytes_sum = 0;
  double discarded = 0.0;
  for (idx i = 0; i < x.rows(); ++i) {
    const circuit::Circuit c =
        circuit::feature_map_circuit(config.ansatz, row_features(x, i));
    // feature_map_circuit already contains the Hadamard preparation layer
    // (Eq. 2), so simulation starts from |0...0>.
    mps::SimulationResult r = sim.simulate(c);
    bond_sum += static_cast<double>(r.state.max_bond());
    bytes_sum += r.state.memory_bytes();
    discarded += r.truncation.total_discarded_weight;
    states.push_back(std::move(r.state));
  }
  if (stats != nullptr) {
    stats->phases.add("simulation", timer.seconds());
    stats->circuits_simulated += x.rows();
    stats->avg_max_bond = bond_sum / static_cast<double>(std::max<idx>(x.rows(), 1));
    stats->avg_mps_bytes = bytes_sum / static_cast<std::size_t>(std::max<idx>(x.rows(), 1));
    stats->total_discarded_weight += discarded;
  }
  return states;
}

RealMatrix gram_from_states(const std::vector<mps::Mps>& states,
                            linalg::ExecPolicy policy, GramStats* stats) {
  const idx n = static_cast<idx>(states.size());
  RealMatrix k(n, n);
  ThreadCpuTimer timer;
  idx count = 0;
  for (idx i = 0; i < n; ++i) {
    k(i, i) = 1.0;  // normalized states overlap with themselves
    for (idx j = i + 1; j < n; ++j) {
      const double v = mps::overlap_squared(states[static_cast<std::size_t>(i)],
                                            states[static_cast<std::size_t>(j)],
                                            policy);
      k(i, j) = v;
      k(j, i) = v;
      ++count;
    }
  }
  if (stats != nullptr) {
    stats->phases.add("inner_product", timer.seconds());
    stats->inner_products += count;
  }
  return k;
}

RealMatrix cross_from_states(const std::vector<mps::Mps>& test_states,
                             const std::vector<mps::Mps>& train_states,
                             linalg::ExecPolicy policy, GramStats* stats) {
  const idx nt = static_cast<idx>(test_states.size());
  const idx nr = static_cast<idx>(train_states.size());
  RealMatrix k(nt, nr);
  ThreadCpuTimer timer;
  for (idx i = 0; i < nt; ++i)
    for (idx j = 0; j < nr; ++j)
      k(i, j) = mps::overlap_squared(test_states[static_cast<std::size_t>(i)],
                                     train_states[static_cast<std::size_t>(j)],
                                     policy);
  if (stats != nullptr) {
    stats->phases.add("inner_product", timer.seconds());
    stats->inner_products += nt * nr;
  }
  return k;
}

RealMatrix gram_matrix(const QuantumKernelConfig& config, const RealMatrix& x,
                       GramStats* stats) {
  const std::vector<mps::Mps> states = simulate_states(config, x, stats);
  return gram_from_states(states, config.sim.policy, stats);
}

RealMatrix cross_kernel(const QuantumKernelConfig& config,
                        const RealMatrix& x_test, const RealMatrix& x_train,
                        GramStats* stats) {
  const std::vector<mps::Mps> test_states = simulate_states(config, x_test, stats);
  const std::vector<mps::Mps> train_states = simulate_states(config, x_train, stats);
  return cross_from_states(test_states, train_states, config.sim.policy, stats);
}

}  // namespace qkmps::kernel
