#pragma once

#include "kernel/gram.hpp"
#include "util/rng.hpp"

namespace qkmps::kernel {

/// Finite-shot estimator of the fidelity kernel — the *hardware* route the
/// paper contrasts with exact MPS contraction (Sec. I: on a quantum
/// computer the overlap |<psi(x)|psi(x')>|^2 is estimated from
/// measurements, and exponential concentration [15] makes the required
/// shot count blow up).
///
/// We model the standard compute-uncompute (inversion) test: prepare
/// U(x')^dagger U(x) |+>^m ... |initial>, measure, and count all-zero
/// outcomes; the all-zero frequency is an unbiased estimate of the kernel
/// entry. The simulator shortcut: the exact entry k is available from the
/// MPS, so each shot is a Bernoulli(k) draw — statistically identical to
/// the hardware experiment (without device noise).
struct ShotKernelConfig {
  QuantumKernelConfig base;
  idx shots = 1024;         ///< measurement shots per kernel entry
  std::uint64_t seed = 7;   ///< shot-noise stream
};

/// Symmetric training Gram matrix where every off-diagonal entry is a
/// finite-shot estimate; diagonal stays exactly 1 (self-overlap needs no
/// experiment).
RealMatrix shot_gram(const ShotKernelConfig& config, const RealMatrix& x,
                     GramStats* stats = nullptr);

/// Rectangular shot-estimated kernel.
RealMatrix shot_cross(const ShotKernelConfig& config, const RealMatrix& x_test,
                      const RealMatrix& x_train, GramStats* stats = nullptr);

/// Bernoulli estimate of a single exact entry; exposed for tests.
double shot_estimate(double exact_entry, idx shots, Rng& rng);

}  // namespace qkmps::kernel
