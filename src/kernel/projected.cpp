#include "kernel/projected.hpp"

#include <cmath>

#include "mps/observables.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace qkmps::kernel {

RealMatrix projected_features(const ProjectedKernelConfig& config,
                              const RealMatrix& x, GramStats* stats) {
  QKMPS_CHECK(x.cols() == config.ansatz.num_features);
  const idx m = config.ansatz.num_features;
  const mps::MpsSimulator sim(config.sim);

  RealMatrix f(x.rows(), 3 * m);
  Timer timer;
  for (idx i = 0; i < x.rows(); ++i) {
    std::vector<double> row(x.row(i), x.row(i) + m);
    const circuit::Circuit c = circuit::feature_map_circuit(config.ansatz, row);
    mps::SimulationResult r = sim.simulate(c);
    const std::vector<double> paulis =
        mps::pauli_feature_vector(std::move(r.state), config.sim.policy);
    for (idx j = 0; j < 3 * m; ++j)
      f(i, j) = paulis[static_cast<std::size_t>(j)];
  }
  if (stats != nullptr) {
    stats->phases.add("simulation", timer.seconds());
    stats->circuits_simulated += x.rows();
  }
  return f;
}

RealMatrix projected_kernel_from_features(const RealMatrix& f_rows,
                                          const RealMatrix& f_cols,
                                          double gamma_p) {
  QKMPS_CHECK(f_rows.cols() == f_cols.cols());
  RealMatrix k(f_rows.rows(), f_cols.rows());
  for (idx i = 0; i < f_rows.rows(); ++i) {
    for (idx j = 0; j < f_cols.rows(); ++j) {
      double dist = 0.0;
      for (idx t = 0; t < f_rows.cols(); ++t) {
        const double d = f_rows(i, t) - f_cols(j, t);
        dist += d * d;
      }
      // ||rho_q - rho_q'||_F^2 = (1/2) sum of squared Pauli differences.
      k(i, j) = std::exp(-gamma_p * 0.5 * dist);
    }
  }
  return k;
}

RealMatrix projected_gram(const ProjectedKernelConfig& config,
                          const RealMatrix& x, GramStats* stats) {
  const RealMatrix f = projected_features(config, x, stats);
  Timer timer;
  RealMatrix k = projected_kernel_from_features(f, f, config.gamma_p);
  if (stats != nullptr) {
    stats->phases.add("inner_product", timer.seconds());
    stats->inner_products += x.rows() * x.rows();
  }
  return k;
}

RealMatrix projected_cross(const ProjectedKernelConfig& config,
                           const RealMatrix& x_test, const RealMatrix& x_train,
                           GramStats* stats) {
  const RealMatrix ft = projected_features(config, x_test, stats);
  const RealMatrix fr = projected_features(config, x_train, stats);
  Timer timer;
  RealMatrix k = projected_kernel_from_features(ft, fr, config.gamma_p);
  if (stats != nullptr) {
    stats->phases.add("inner_product", timer.seconds());
    stats->inner_products += x_test.rows() * x_train.rows();
  }
  return k;
}

}  // namespace qkmps::kernel
