#pragma once

#include "kernel/kernel_matrix.hpp"

namespace qkmps::kernel {

/// Classical baseline: the Gaussian (RBF) kernel of Eq. 9,
/// k(x, x') = exp(-alpha |x - x'|^2), with the paper's bandwidth choice
/// alpha = 1 / (m * var(X)) (scikit-learn's "scale" convention).
double gaussian_alpha(const RealMatrix& x);

/// Symmetric training Gram matrix under the Gaussian kernel.
RealMatrix gaussian_gram(const RealMatrix& x, double alpha);

/// Rectangular test-vs-train Gaussian kernel.
RealMatrix gaussian_cross(const RealMatrix& x_test, const RealMatrix& x_train,
                          double alpha);

}  // namespace qkmps::kernel
