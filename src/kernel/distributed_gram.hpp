#pragma once

#include "kernel/gram.hpp"

namespace qkmps::kernel {

/// Distribution strategy for the Gram matrix (Fig. 4 of the paper).
enum class DistributionStrategy {
  /// Fig. 4a: the kernel matrix is tiled and each rank independently
  /// simulates every state its tiles touch. Zero communication, but each
  /// circuit is simulated on O(sqrt(k)) ranks.
  NoMessaging,
  /// Fig. 4b: states are split evenly, each circuit simulated exactly
  /// once, then state blocks travel a ring so every rank computes its row
  /// of tiles. Memory-optimal; faster whenever transporting a state is
  /// cheaper than re-simulating it.
  RoundRobin,
};

/// Distributed computation of the symmetric training Gram matrix on
/// `num_ranks` thread-backed ranks. Produces bitwise the same matrix as
/// kernel::gram_matrix (up to floating-point reduction order, which is
/// identical here since every entry is computed independently).
/// Per-rank phase timings are merged into `stats` if provided.
RealMatrix distributed_gram_matrix(const QuantumKernelConfig& config,
                                   const RealMatrix& x, int num_ranks,
                                   DistributionStrategy strategy,
                                   GramStats* stats = nullptr);

/// Distributed rectangular inference kernel (test rows x train cols) with
/// the round-robin strategy: rank p simulates test block p and train block
/// p; train blocks travel the ring (Sec. II-D's rectangular case with
/// ell == k tile columns).
RealMatrix distributed_cross_kernel(const QuantumKernelConfig& config,
                                    const RealMatrix& x_test,
                                    const RealMatrix& x_train, int num_ranks,
                                    GramStats* stats = nullptr);

}  // namespace qkmps::kernel
