#pragma once

#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace qkmps::kernel {

/// Dense real matrix used for kernel/Gram matrices and raw feature data.
/// Row-major, double precision.
class RealMatrix {
 public:
  RealMatrix() = default;
  RealMatrix(idx rows, idx cols)
      : rows_(rows), cols_(cols),
        a_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0) {
    QKMPS_CHECK(rows >= 0 && cols >= 0);
  }

  idx rows() const { return rows_; }
  idx cols() const { return cols_; }

  double& operator()(idx i, idx j) {
    return a_[static_cast<std::size_t>(i * cols_ + j)];
  }
  const double& operator()(idx i, idx j) const {
    return a_[static_cast<std::size_t>(i * cols_ + j)];
  }

  double* data() { return a_.data(); }
  const double* data() const { return a_.data(); }
  double* row(idx i) { return a_.data() + i * cols_; }
  const double* row(idx i) const { return a_.data() + i * cols_; }

 private:
  idx rows_ = 0;
  idx cols_ = 0;
  std::vector<double> a_;
};

/// Max |A_ij - B_ij|.
double max_abs_diff(const RealMatrix& a, const RealMatrix& b);

/// Symmetry defect max |K_ij - K_ji| (training Gram matrices must be
/// symmetric).
double symmetry_defect(const RealMatrix& k);

}  // namespace qkmps::kernel
