#include "kernel/gaussian.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qkmps::kernel {

double gaussian_alpha(const RealMatrix& x) {
  QKMPS_CHECK(x.rows() > 0 && x.cols() > 0);
  // Variance of the flattened feature matrix (population), matching
  // sklearn's gamma="scale": 1 / (n_features * X.var()).
  const idx total = x.rows() * x.cols();
  double mean = 0.0;
  for (idx i = 0; i < x.rows(); ++i)
    for (idx j = 0; j < x.cols(); ++j) mean += x(i, j);
  mean /= static_cast<double>(total);
  double var = 0.0;
  for (idx i = 0; i < x.rows(); ++i)
    for (idx j = 0; j < x.cols(); ++j) {
      const double d = x(i, j) - mean;
      var += d * d;
    }
  var /= static_cast<double>(total);
  QKMPS_CHECK_MSG(var > 0.0, "degenerate dataset: zero variance");
  return 1.0 / (static_cast<double>(x.cols()) * var);
}

namespace {
double sq_dist(const RealMatrix& a, idx i, const RealMatrix& b, idx j) {
  double s = 0.0;
  const double* ra = a.row(i);
  const double* rb = b.row(j);
  for (idx f = 0; f < a.cols(); ++f) {
    const double d = ra[f] - rb[f];
    s += d * d;
  }
  return s;
}
}  // namespace

RealMatrix gaussian_gram(const RealMatrix& x, double alpha) {
  const idx n = x.rows();
  RealMatrix k(n, n);
  for (idx i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (idx j = i + 1; j < n; ++j) {
      const double v = std::exp(-alpha * sq_dist(x, i, x, j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

RealMatrix gaussian_cross(const RealMatrix& x_test, const RealMatrix& x_train,
                          double alpha) {
  QKMPS_CHECK(x_test.cols() == x_train.cols());
  RealMatrix k(x_test.rows(), x_train.rows());
  for (idx i = 0; i < x_test.rows(); ++i)
    for (idx j = 0; j < x_train.rows(); ++j)
      k(i, j) = std::exp(-alpha * sq_dist(x_test, i, x_train, j));
  return k;
}

}  // namespace qkmps::kernel
