#include "kernel/shot_kernel.hpp"

#include "util/error.hpp"

namespace qkmps::kernel {

double shot_estimate(double exact_entry, idx shots, Rng& rng) {
  QKMPS_CHECK(shots >= 1);
  QKMPS_CHECK(exact_entry >= -1e-12 && exact_entry <= 1.0 + 1e-12);
  const double p = std::min(1.0, std::max(0.0, exact_entry));
  idx hits = 0;
  for (idx s = 0; s < shots; ++s)
    if (rng.uniform() < p) ++hits;
  return static_cast<double>(hits) / static_cast<double>(shots);
}

RealMatrix shot_gram(const ShotKernelConfig& config, const RealMatrix& x,
                     GramStats* stats) {
  const RealMatrix exact = gram_matrix(config.base, x, stats);
  Rng rng(config.seed);
  RealMatrix k(exact.rows(), exact.cols());
  for (idx i = 0; i < exact.rows(); ++i) {
    k(i, i) = 1.0;
    for (idx j = i + 1; j < exact.cols(); ++j) {
      const double est = shot_estimate(exact(i, j), config.shots, rng);
      k(i, j) = est;
      k(j, i) = est;
    }
  }
  return k;
}

RealMatrix shot_cross(const ShotKernelConfig& config, const RealMatrix& x_test,
                      const RealMatrix& x_train, GramStats* stats) {
  const RealMatrix exact = cross_kernel(config.base, x_test, x_train, stats);
  Rng rng(config.seed + 1);
  RealMatrix k(exact.rows(), exact.cols());
  for (idx i = 0; i < exact.rows(); ++i)
    for (idx j = 0; j < exact.cols(); ++j)
      k(i, j) = shot_estimate(exact(i, j), config.shots, rng);
  return k;
}

}  // namespace qkmps::kernel
