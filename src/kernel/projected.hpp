#pragma once

#include "kernel/gram.hpp"

namespace qkmps::kernel {

/// Projected quantum kernel (Huang et al., "Power of data in quantum
/// machine learning" — the paper's ref [12], offered in Sec. I as the
/// alternative to direct fidelity overlaps): measure a set of local
/// observables on each |psi(x)> and evaluate a classical RBF kernel on the
/// resulting feature vectors,
///   k_P(x, x') = exp(-gamma_p * sum_q || rho_q(x) - rho_q(x') ||_F^2),
/// realized here with the 1-qubit reduced density matrices expressed via
/// Pauli expectations: ||rho_q - rho_q'||_F^2 =
///   (1/2) [ (dX)^2 + (dY)^2 + (dZ)^2 ].
///
/// Advantages at scale: feature extraction is O(m chi^2) per state (vs
/// O(m chi^3) per *pair*), and the N x N kernel assembly involves no
/// tensor networks at all.
struct ProjectedKernelConfig {
  circuit::AnsatzParams ansatz;
  mps::SimulatorConfig sim;
  double gamma_p = 1.0;  ///< RBF bandwidth on the projected features
};

/// The 3m-dimensional Pauli feature vectors for each data row.
RealMatrix projected_features(const ProjectedKernelConfig& config,
                              const RealMatrix& x, GramStats* stats = nullptr);

/// Symmetric projected-kernel Gram matrix on training data.
RealMatrix projected_gram(const ProjectedKernelConfig& config,
                          const RealMatrix& x, GramStats* stats = nullptr);

/// Rectangular projected kernel between test and train sets.
RealMatrix projected_cross(const ProjectedKernelConfig& config,
                           const RealMatrix& x_test, const RealMatrix& x_train,
                           GramStats* stats = nullptr);

/// Kernel assembly from precomputed feature matrices (rows = points,
/// 3 columns per qubit).
RealMatrix projected_kernel_from_features(const RealMatrix& f_rows,
                                          const RealMatrix& f_cols,
                                          double gamma_p);

}  // namespace qkmps::kernel
