#pragma once

#include "linalg/policy.hpp"
#include "mps/mps.hpp"

namespace qkmps::mps {

/// Moves the orthogonality center one site to the right (QR on the center
/// site, R absorbed into the neighbour) or left (LQ mirror image).
void shift_center_right(Mps& psi, linalg::ExecPolicy policy);
void shift_center_left(Mps& psi, linalg::ExecPolicy policy);

/// Moves the orthogonality center to `target` via successive QR/LQ sweeps.
/// This is the "canonicalization applied before each SVD truncation" of the
/// paper (Sec. II-B, footnote 2): with the center on the bond being
/// truncated, dropping the smallest singular values is globally optimal.
void move_center(Mps& psi, idx target, linalg::ExecPolicy policy);

/// Diagnostics for tests: residual of the left-orthonormality condition
/// sum_s A_s^H A_s = I at `site` (analogous right version).
double left_orthonormality_defect(const Mps& psi, idx site);
double right_orthonormality_defect(const Mps& psi, idx site);

}  // namespace qkmps::mps
