#include "mps/inner_product.hpp"

#include "linalg/gemm.hpp"
#include "util/error.hpp"

namespace qkmps::mps {

cplx inner_product(const Mps& a, const Mps& b, linalg::ExecPolicy policy) {
  QKMPS_CHECK(a.num_sites() == b.num_sites());
  const idx m = a.num_sites();

  // E starts as the trivial 1x1 environment.
  linalg::Matrix env(1, 1);
  env(0, 0) = 1.0;

  for (idx i = 0; i < m; ++i) {
    const SiteTensor& sa = a.site(i);
    const SiteTensor& sb = b.site(i);
    QKMPS_CHECK(sa.left == env.rows() && sb.left == env.cols());

    // T[ia, (s jb')] = sum_jb E[ia, jb] B[jb, (s jb')]
    const linalg::Matrix t = linalg::gemm(env, sb.as_right_matrix(), policy);
    // env'[ia', jb'] = sum_{ia, s} conj(A[(ia s), ia']) T[(ia s), jb']
    // where T reinterpreted as ((ia s), jb') — row-major makes this free.
    linalg::Matrix t2(sa.left * 2, sb.right);
    std::copy(t.data(), t.data() + t.size(), t2.data());
    env = linalg::gemm(sa.as_left_matrix(), t2, policy, linalg::Op::ConjT,
                       linalg::Op::None);
  }

  QKMPS_CHECK(env.rows() == 1 && env.cols() == 1);
  return env(0, 0);
}

double overlap_squared(const Mps& a, const Mps& b, linalg::ExecPolicy policy) {
  const cplx ip = inner_product(a, b, policy);
  return ip.real() * ip.real() + ip.imag() * ip.imag();
}

}  // namespace qkmps::mps
