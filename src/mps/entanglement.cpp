#include "mps/entanglement.hpp"

#include <cmath>

#include "linalg/svd.hpp"
#include "mps/canonical.hpp"
#include "util/error.hpp"

namespace qkmps::mps {

std::vector<double> schmidt_values(Mps psi, idx bond,
                                   linalg::ExecPolicy policy) {
  QKMPS_CHECK(bond >= 0 && bond + 1 < psi.num_sites());
  // With the center at `bond`, everything left is left-orthonormal and
  // everything right is right-orthonormal, so the singular values of the
  // center site's (left x phys, right) matricization ARE the Schmidt
  // coefficients across the bond.
  move_center(psi, bond, policy);
  const linalg::SvdResult f =
      linalg::svd(psi.site(bond).as_left_matrix(), policy);
  return f.s;
}

double entanglement_entropy(const Mps& psi, idx bond,
                            linalg::ExecPolicy policy) {
  const std::vector<double> s = schmidt_values(psi, bond, policy);
  double entropy = 0.0;
  for (double v : s) {
    const double p = v * v;
    if (p > 1e-300) entropy -= p * std::log(p);
  }
  return entropy;
}

std::vector<double> entropy_profile(const Mps& psi, linalg::ExecPolicy policy) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(psi.num_sites() - 1));
  for (idx b = 0; b + 1 < psi.num_sites(); ++b)
    out.push_back(entanglement_entropy(psi, b, policy));
  return out;
}

}  // namespace qkmps::mps
