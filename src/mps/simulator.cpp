#include "mps/simulator.hpp"

#include "circuit/routing.hpp"
#include "mps/gate_application.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace qkmps::mps {

MpsSimulator::MpsSimulator(SimulatorConfig config) : config_(config) {}

SimulationResult MpsSimulator::simulate(const circuit::Circuit& c) const {
  return simulate(c, Mps(c.num_qubits()));
}

SimulationResult MpsSimulator::simulate(const circuit::Circuit& c,
                                        Mps initial) const {
  QKMPS_CHECK(c.num_qubits() == initial.num_sites());
  const circuit::Circuit routed =
      c.is_nearest_neighbour() ? c : circuit::route_to_chain(c);

  SimulationResult out{std::move(initial), {}, {}, 0.0, 0};
  Timer timer;
  for (const circuit::Gate& g : routed.gates()) {
    apply_gate(out.state, g, config_.truncation, config_.policy,
               &out.truncation);
    ++out.gates_applied;
    if (config_.track_memory) {
      out.memory.record(out.gates_applied, out.state.memory_bytes(),
                        out.state.max_bond());
    }
  }
  out.seconds = timer.seconds();
  return out;
}

}  // namespace qkmps::mps
