#include <algorithm>
#include <vector>

#include "circuit/routing.hpp"
#include "linalg/batched.hpp"
#include "mps/gate_application.hpp"
#include "mps/simulator.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace qkmps::mps {

namespace {

/// One circuit advancing through the lockstep sweep. The TwoQubitStep's
/// buffers persist across every gate of the circuit, so after the first
/// few gates the hot loop stops allocating.
struct BatchTask {
  circuit::Circuit routed;
  SimulationResult result;
  std::size_t next_gate = 0;
  TwoQubitStep step;
  bool pending = false;  ///< a staged two-qubit gate awaits the kernel passes
};

}  // namespace

std::vector<SimulationResult> MpsSimulator::simulate_batch(
    const std::vector<circuit::Circuit>& circuits,
    const linalg::KernelBatchConfig& kernels) const {
  // The per-matrix kernel flavour always follows the simulator config, so
  // a batch is bitwise-comparable with simulate() under the same config.
  linalg::KernelBatchConfig cfg = kernels;
  cfg.policy = config_.policy;

  Timer timer;
  std::vector<BatchTask> tasks;
  tasks.reserve(circuits.size());
  for (const circuit::Circuit& c : circuits) {
    tasks.push_back(BatchTask{
        c.is_nearest_neighbour() ? c : circuit::route_to_chain(c),
        SimulationResult{Mps(c.num_qubits()), {}, {}, 0.0, 0}, 0, {}, false});
  }

  // Advances one task: single-qubit gates apply inline; the first
  // two-qubit gate met is staged (phase 1) and the task parks until the
  // round's kernel passes complete it.
  const auto advance = [&](BatchTask& t) {
    while (t.next_gate < t.routed.gates().size()) {
      const circuit::Gate& g = t.routed.gates()[t.next_gate];
      if (!g.is_two_qubit()) {
        apply_single_qubit_gate(t.result.state, g.matrix(), g.q0);
        ++t.next_gate;
        ++t.result.gates_applied;
        if (config_.track_memory) {
          t.result.memory.record(t.result.gates_applied,
                                 t.result.state.memory_bytes(),
                                 t.result.state.max_bond());
        }
        continue;
      }
      QKMPS_CHECK_MSG(std::abs(g.q0 - g.q1) == 1,
                      "non-adjacent two-qubit gate survived routing");
      const linalg::Matrix u = chain_ordered_gate(g);
      stage_two_qubit_gate(t.result.state, u, std::min(g.q0, g.q1), t.step,
                           config_.policy);
      t.pending = true;
      return;
    }
  };

  linalg::KernelArena arena;
  std::vector<std::size_t> round;  // tasks with a staged gate this round
  std::vector<linalg::GemmTask> gemms;
  std::vector<linalg::SvdTask> svds;
  round.reserve(tasks.size());
  gemms.reserve(tasks.size());
  svds.reserve(tasks.size());

  for (;;) {
    // Stage phase: per-task serial work (single-qubit gates, canonical
    // moves, matricization), spread across the batch budget.
    linalg::batched_for(tasks.size(), cfg, [&](std::size_t i) {
      if (!tasks[i].pending) advance(tasks[i]);
    });

    round.clear();
    for (std::size_t i = 0; i < tasks.size(); ++i)
      if (tasks[i].pending) round.push_back(i);
    if (round.empty()) break;

    // theta = a_left * b_right across the round in one pass.
    gemms.clear();
    for (std::size_t i : round) {
      TwoQubitStep& s = tasks[i].step;
      gemms.push_back({&s.a_left, &s.b_right, &s.theta});
    }
    linalg::batched_gemm(gemms, cfg);

    linalg::batched_for(round.size(), cfg, [&](std::size_t r) {
      permute_theta_for_gate(tasks[round[r]].step);
    });

    // theta_u = gate * theta_p.
    gemms.clear();
    for (std::size_t i : round) {
      TwoQubitStep& s = tasks[i].step;
      gemms.push_back({&s.gate, &s.theta_p, &s.theta_u});
    }
    linalg::batched_gemm(gemms, cfg);

    linalg::batched_for(round.size(), cfg, [&](std::size_t r) {
      permute_theta_for_svd(tasks[round[r]].step);
    });

    // The round's truncation SVDs — the micro-batch the batched kernel
    // layer exists for.
    svds.clear();
    for (std::size_t i : round) {
      TwoQubitStep& s = tasks[i].step;
      svds.push_back({&s.theta_m, &s.f});
    }
    linalg::batched_svd(svds, cfg, &arena);

    // Commit phase: truncate, write back, bookkeeping — per-task again.
    linalg::batched_for(round.size(), cfg, [&](std::size_t r) {
      BatchTask& t = tasks[round[r]];
      commit_two_qubit_gate(t.result.state, t.step, config_.truncation,
                            &t.result.truncation);
      ++t.next_gate;
      ++t.result.gates_applied;
      if (config_.track_memory) {
        t.result.memory.record(t.result.gates_applied,
                               t.result.state.memory_bytes(),
                               t.result.state.max_bond());
      }
      t.pending = false;
    });
  }

  const double seconds = timer.seconds();
  std::vector<SimulationResult> out;
  out.reserve(tasks.size());
  for (BatchTask& t : tasks) {
    t.result.seconds = seconds;
    out.push_back(std::move(t.result));
  }
  return out;
}

}  // namespace qkmps::mps
