#pragma once

#include <array>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/policy.hpp"
#include "util/types.hpp"

namespace qkmps::mps {

/// One MPS site tensor with shape (left bond, physical = 2, right bond),
/// stored row-major: a[(l * 2 + s) * right + r].
struct SiteTensor {
  idx left = 1;
  idx right = 1;
  std::vector<cplx> a;

  SiteTensor() : a(2, cplx(0.0)) {}
  SiteTensor(idx l, idx r) : left(l), right(r), a(static_cast<std::size_t>(l * 2 * r)) {}

  cplx& at(idx l, idx s, idx r) {
    return a[static_cast<std::size_t>((l * 2 + s) * right + r)];
  }
  const cplx& at(idx l, idx s, idx r) const {
    return a[static_cast<std::size_t>((l * 2 + s) * right + r)];
  }

  /// Matricize grouping (left, physical) as rows: (2*left) x right.
  linalg::Matrix as_left_matrix() const;
  /// Matricize grouping (physical, right) as columns: left x (2*right).
  linalg::Matrix as_right_matrix() const;

  static SiteTensor from_left_matrix(const linalg::Matrix& m, idx left);
  static SiteTensor from_right_matrix(const linalg::Matrix& m, idx right);

  std::size_t bytes() const { return a.size() * sizeof(cplx); }
};

/// Matrix Product State on a linear chain of qubits (Sec. II-B). Maintains
/// a mixed-canonical form: sites left of `center()` are left-orthonormal,
/// sites right of it are right-orthonormal. That invariant is exactly what
/// makes per-bond SVD truncation globally optimal (the paper's
/// "canonicalization is applied before each SVD truncation").
class Mps {
 public:
  /// |0...0> product state.
  explicit Mps(idx num_sites);

  /// |+>^m — the paper's initial state (Eq. 2).
  static Mps plus_state(idx num_sites);
  /// Product state from per-site 2-vectors.
  static Mps product_state(const std::vector<std::array<cplx, 2>>& amps);

  idx num_sites() const { return static_cast<idx>(sites_.size()); }
  const SiteTensor& site(idx i) const { return sites_[static_cast<std::size_t>(i)]; }
  SiteTensor& site(idx i) { return sites_[static_cast<std::size_t>(i)]; }

  idx center() const { return center_; }
  void set_center(idx c) { center_ = c; }

  /// Bond dimension between sites i and i+1.
  idx bond(idx i) const { return sites_[static_cast<std::size_t>(i)].right; }
  /// Largest virtual bond dimension — the chi that drives the O(m chi^3)
  /// costs (Table I reports its average over data points).
  idx max_bond() const;
  std::vector<idx> bonds() const;

  /// Total heap footprint of the site tensors in bytes; the quantity
  /// plotted in Fig. 6 and tabulated ("Memory per MPS") in Table I.
  std::size_t memory_bytes() const;

  /// sqrt(<psi|psi>).
  double norm(linalg::ExecPolicy policy = linalg::ExecPolicy::Reference) const;

  /// Scales the state so norm() == 1.
  void normalize(linalg::ExecPolicy policy = linalg::ExecPolicy::Reference);

  /// Dense amplitude vector (qubit 0 = most significant bit); exponential,
  /// test-only, guarded to small m.
  std::vector<cplx> to_statevector() const;

 private:
  std::vector<SiteTensor> sites_;
  idx center_ = 0;
};

}  // namespace qkmps::mps
