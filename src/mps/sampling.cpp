#include "mps/sampling.hpp"

#include <cmath>

#include "mps/canonical.hpp"
#include "util/error.hpp"

namespace qkmps::mps {

namespace {

/// One autoregressive sweep over a right-canonical MPS (center at site 0).
/// `v` tracks the boundary vector of the measured prefix; with right
/// canonical form, |v|^2 after absorbing site q is exactly the marginal
/// probability of the outcomes chosen so far.
std::vector<int> sample_from_canonical(const Mps& psi, Rng& rng) {
  const idx m = psi.num_sites();
  std::vector<int> bits(static_cast<std::size_t>(m), 0);
  std::vector<cplx> v{1.0};

  double prefix_prob = 1.0;
  for (idx q = 0; q < m; ++q) {
    const SiteTensor& t = psi.site(q);
    QKMPS_CHECK(static_cast<idx>(v.size()) == t.left);
    std::vector<cplx> w0(static_cast<std::size_t>(t.right), cplx(0.0));
    std::vector<cplx> w1(static_cast<std::size_t>(t.right), cplx(0.0));
    for (idx l = 0; l < t.left; ++l) {
      const cplx vl = v[static_cast<std::size_t>(l)];
      if (vl == cplx(0.0)) continue;
      for (idx r = 0; r < t.right; ++r) {
        w0[static_cast<std::size_t>(r)] += vl * t.at(l, 0, r);
        w1[static_cast<std::size_t>(r)] += vl * t.at(l, 1, r);
      }
    }
    double p0 = 0.0, p1 = 0.0;
    for (const auto& x : w0) p0 += std::norm(x);
    for (const auto& x : w1) p1 += std::norm(x);
    // Conditional probability of outcome 0 given the prefix.
    const double total = p0 + p1;
    QKMPS_CHECK_MSG(total > 0.0, "zero-norm branch during sampling");
    const int outcome = (rng.uniform() * total < p0) ? 0 : 1;
    bits[static_cast<std::size_t>(q)] = outcome;
    v = outcome == 0 ? std::move(w0) : std::move(w1);
    prefix_prob = outcome == 0 ? p0 : p1;
  }
  (void)prefix_prob;
  return bits;
}

}  // namespace

std::vector<int> sample_bitstring(const Mps& psi, Rng& rng) {
  Mps canonical = psi;
  move_center(canonical, 0, linalg::ExecPolicy::Reference);
  canonical.normalize();
  return sample_from_canonical(canonical, rng);
}

std::vector<std::vector<int>> sample_bitstrings(const Mps& psi, idx shots,
                                                Rng& rng) {
  QKMPS_CHECK(shots >= 1);
  Mps canonical = psi;
  move_center(canonical, 0, linalg::ExecPolicy::Reference);
  canonical.normalize();
  std::vector<std::vector<int>> out;
  out.reserve(static_cast<std::size_t>(shots));
  for (idx s = 0; s < shots; ++s)
    out.push_back(sample_from_canonical(canonical, rng));
  return out;
}

double bitstring_probability(const Mps& psi, const std::vector<int>& bits) {
  QKMPS_CHECK(static_cast<idx>(bits.size()) == psi.num_sites());
  std::vector<cplx> v{1.0};
  for (idx q = 0; q < psi.num_sites(); ++q) {
    const SiteTensor& t = psi.site(q);
    const int s = bits[static_cast<std::size_t>(q)];
    QKMPS_CHECK(s == 0 || s == 1);
    std::vector<cplx> next(static_cast<std::size_t>(t.right), cplx(0.0));
    for (idx l = 0; l < t.left; ++l) {
      const cplx vl = v[static_cast<std::size_t>(l)];
      if (vl == cplx(0.0)) continue;
      for (idx r = 0; r < t.right; ++r)
        next[static_cast<std::size_t>(r)] += vl * t.at(l, s, r);
    }
    v = std::move(next);
  }
  QKMPS_CHECK(v.size() == 1);
  return std::norm(v[0]);
}

}  // namespace qkmps::mps
