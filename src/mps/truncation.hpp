#pragma once

#include <cmath>

#include "util/types.hpp"

namespace qkmps::mps {

/// SVD truncation policy (Sec. II-B, Eq. 8). The default budget keeps the
/// discarded squared singular weight per truncation at 64-bit machine
/// precision, making the simulation "virtually noiseless"; max_bond (if
/// > 0) adds the hard chi cap that "more aggressive truncation" scenarios
/// in the conclusion would use.
struct TruncationConfig {
  double max_discarded_weight = kDefaultTruncationError;
  idx max_bond = 0;
};

/// Running record of the error actually introduced: we track the sum of
/// per-truncation discarded weights w_k. 1 - sum_k w_k approximates the
/// final fidelity to first order (see fidelity_lower_bound for when that
/// is and is not a rigorous bound).
struct TruncationStats {
  double total_discarded_weight = 0.0;
  /// Neumaier compensation term for total_discarded_weight: the running
  /// sum stays bitwise-compatible with a plain += accumulation (so
  /// existing readers see identical values), while fidelity_lower_bound
  /// folds the compensation back in. Exactness guarantees: a run with no
  /// truncation (every discarded == 0.0) keeps both terms at +0.0 and the
  /// bound at exactly 1.0, including when the discarded tail was all-zero
  /// singular values; long runs of tiny weights after a large one no
  /// longer vanish into rounding.
  double discarded_compensation = 0.0;
  idx truncation_count = 0;
  idx max_bond_seen = 1;

  void record(double discarded, idx new_bond) {
    const double sum = total_discarded_weight + discarded;
    if (std::abs(total_discarded_weight) >= std::abs(discarded))
      discarded_compensation += (total_discarded_weight - sum) + discarded;
    else
      discarded_compensation += (discarded - sum) + total_discarded_weight;
    total_discarded_weight = sum;
    ++truncation_count;
    if (new_bond > max_bond_seen) max_bond_seen = new_bond;
  }

  /// First-order estimate of |<ideal|truncated>|^2 (Eq. 8 accumulated).
  /// Rigorous as a bound only in the small-budget regime (cross terms
  /// between truncation errors are second order in w_k); under aggressive
  /// truncation the guaranteed statement is the 2-norm one,
  /// ||ideal - truncated|| <= sum_k sqrt(w_k) <= sqrt(count * sum_k w_k).
  /// Exactly 1.0 (bitwise) when nothing was discarded.
  double fidelity_lower_bound() const {
    const double f =
        1.0 - (total_discarded_weight + discarded_compensation);
    return f > 0.0 ? f : 0.0;
  }
};

}  // namespace qkmps::mps
