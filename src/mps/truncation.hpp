#pragma once

#include "util/types.hpp"

namespace qkmps::mps {

/// SVD truncation policy (Sec. II-B, Eq. 8). The default budget keeps the
/// discarded squared singular weight per truncation at 64-bit machine
/// precision, making the simulation "virtually noiseless"; max_bond (if
/// > 0) adds the hard chi cap that "more aggressive truncation" scenarios
/// in the conclusion would use.
struct TruncationConfig {
  double max_discarded_weight = kDefaultTruncationError;
  idx max_bond = 0;
};

/// Running record of the error actually introduced: we track the sum of
/// per-truncation discarded weights w_k. 1 - sum_k w_k approximates the
/// final fidelity to first order (see fidelity_lower_bound for when that
/// is and is not a rigorous bound).
struct TruncationStats {
  double total_discarded_weight = 0.0;
  idx truncation_count = 0;
  idx max_bond_seen = 1;

  void record(double discarded, idx new_bond) {
    total_discarded_weight += discarded;
    ++truncation_count;
    if (new_bond > max_bond_seen) max_bond_seen = new_bond;
  }

  /// First-order estimate of |<ideal|truncated>|^2 (Eq. 8 accumulated).
  /// Rigorous as a bound only in the small-budget regime (cross terms
  /// between truncation errors are second order in w_k); under aggressive
  /// truncation the guaranteed statement is the 2-norm one,
  /// ||ideal - truncated|| <= sum_k sqrt(w_k) <= sqrt(count * sum_k w_k).
  double fidelity_lower_bound() const {
    const double f = 1.0 - total_discarded_weight;
    return f > 0.0 ? f : 0.0;
  }
};

}  // namespace qkmps::mps
