#pragma once

#include "util/types.hpp"

namespace qkmps::mps {

/// SVD truncation policy (Sec. II-B, Eq. 8). The default budget keeps the
/// discarded squared singular weight per truncation at 64-bit machine
/// precision, making the simulation "virtually noiseless"; max_bond (if
/// > 0) adds the hard chi cap that "more aggressive truncation" scenarios
/// in the conclusion would use.
struct TruncationConfig {
  double max_discarded_weight = kDefaultTruncationError;
  idx max_bond = 0;
};

/// Running record of the error actually introduced: the fidelity lower
/// bound is prod_k (1 - w_k) >= 1 - sum_k w_k over per-truncation discarded
/// weights w_k, so we track their sum.
struct TruncationStats {
  double total_discarded_weight = 0.0;
  idx truncation_count = 0;
  idx max_bond_seen = 1;

  void record(double discarded, idx new_bond) {
    total_discarded_weight += discarded;
    ++truncation_count;
    if (new_bond > max_bond_seen) max_bond_seen = new_bond;
  }

  /// Lower bound on |<ideal|truncated>|^2 (Eq. 8 accumulated).
  double fidelity_lower_bound() const {
    const double f = 1.0 - total_discarded_weight;
    return f > 0.0 ? f : 0.0;
  }
};

}  // namespace qkmps::mps
