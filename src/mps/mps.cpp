#include "mps/mps.hpp"

#include <array>
#include <cmath>

#include "mps/inner_product.hpp"
#include "util/error.hpp"

namespace qkmps::mps {

linalg::Matrix SiteTensor::as_left_matrix() const {
  linalg::Matrix m(left * 2, right);
  std::copy(a.begin(), a.end(), m.data());
  return m;
}

linalg::Matrix SiteTensor::as_right_matrix() const {
  linalg::Matrix m(left, 2 * right);
  std::copy(a.begin(), a.end(), m.data());
  return m;
}

SiteTensor SiteTensor::from_left_matrix(const linalg::Matrix& m, idx left) {
  QKMPS_CHECK(m.rows() == left * 2);
  SiteTensor t(left, m.cols());
  std::copy(m.data(), m.data() + m.size(), t.a.data());
  return t;
}

SiteTensor SiteTensor::from_right_matrix(const linalg::Matrix& m, idx right) {
  QKMPS_CHECK(m.cols() == 2 * right);
  SiteTensor t(m.rows(), right);
  std::copy(m.data(), m.data() + m.size(), t.a.data());
  return t;
}

Mps::Mps(idx num_sites) {
  QKMPS_CHECK(num_sites >= 1);
  sites_.resize(static_cast<std::size_t>(num_sites));
  for (auto& s : sites_) {
    s = SiteTensor(1, 1);
    s.at(0, 0, 0) = 1.0;
    s.at(0, 1, 0) = 0.0;
  }
  center_ = 0;
}

Mps Mps::plus_state(idx num_sites) {
  Mps psi(num_sites);
  const double h = 1.0 / std::sqrt(2.0);
  for (idx i = 0; i < num_sites; ++i) {
    psi.site(i).at(0, 0, 0) = h;
    psi.site(i).at(0, 1, 0) = h;
  }
  return psi;
}

Mps Mps::product_state(const std::vector<std::array<cplx, 2>>& amps) {
  QKMPS_CHECK(!amps.empty());
  Mps psi(static_cast<idx>(amps.size()));
  for (idx i = 0; i < psi.num_sites(); ++i) {
    psi.site(i).at(0, 0, 0) = amps[static_cast<std::size_t>(i)][0];
    psi.site(i).at(0, 1, 0) = amps[static_cast<std::size_t>(i)][1];
  }
  return psi;
}

idx Mps::max_bond() const {
  idx chi = 1;
  for (const auto& s : sites_) chi = std::max(chi, s.right);
  return chi;
}

std::vector<idx> Mps::bonds() const {
  std::vector<idx> out;
  for (idx i = 0; i + 1 < num_sites(); ++i) out.push_back(bond(i));
  return out;
}

std::size_t Mps::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& s : sites_) total += s.bytes();
  return total;
}

double Mps::norm(linalg::ExecPolicy policy) const {
  const cplx overlap = inner_product(*this, *this, policy);
  return std::sqrt(std::abs(overlap.real()));
}

void Mps::normalize(linalg::ExecPolicy policy) {
  const double n = norm(policy);
  QKMPS_CHECK_MSG(n > 0.0, "cannot normalize the zero state");
  // Scale the center site only, keeping canonical sites orthonormal.
  auto& s = sites_[static_cast<std::size_t>(center_)];
  const cplx scale = 1.0 / n;
  for (auto& v : s.a) v *= scale;
}

std::vector<cplx> Mps::to_statevector() const {
  const idx m = num_sites();
  QKMPS_CHECK_MSG(m <= 22, "to_statevector limited to 22 sites");
  // Left-fold: amp block of shape (2^k, chi_k) after absorbing k sites.
  std::vector<cplx> block(sites_[0].a.begin(), sites_[0].a.end());
  idx rows = 2, chi = sites_[0].right;
  for (idx i = 1; i < m; ++i) {
    const SiteTensor& s = sites_[static_cast<std::size_t>(i)];
    QKMPS_CHECK(s.left == chi);
    std::vector<cplx> next(static_cast<std::size_t>(rows * 2 * s.right), cplx(0.0));
    for (idx rblk = 0; rblk < rows; ++rblk)
      for (idx l = 0; l < chi; ++l) {
        const cplx b = block[static_cast<std::size_t>(rblk * chi + l)];
        if (b == cplx(0.0)) continue;
        for (idx ph = 0; ph < 2; ++ph)
          for (idx r = 0; r < s.right; ++r)
            next[static_cast<std::size_t>((rblk * 2 + ph) * s.right + r)] +=
                b * s.at(l, ph, r);
      }
    block = std::move(next);
    rows *= 2;
    chi = s.right;
  }
  QKMPS_CHECK(chi == 1);
  return block;
}

}  // namespace qkmps::mps
