#pragma once

#include "circuit/gate.hpp"
#include "linalg/policy.hpp"
#include "mps/mps.hpp"
#include "mps/truncation.hpp"

namespace qkmps::mps {

/// Applies a single-qubit gate to site q: a pure contraction with the site
/// tensor (Fig. 1a); bond dimensions are unchanged and no truncation is
/// needed.
void apply_single_qubit_gate(Mps& psi, const linalg::Matrix& u, idx q);

/// Applies a two-qubit gate on adjacent sites (q, q+1) following Fig. 1b:
/// move the orthogonality center to the bond, contract the two site tensors
/// with the gate into a theta tensor, SVD, truncate per `trunc` (Eq. 8),
/// and absorb the singular values into the right factor (leaving the center
/// at q+1). `u` is 4x4 in the |q, q+1> basis. Returns the discarded weight.
double apply_adjacent_two_qubit_gate(Mps& psi, const linalg::Matrix& u, idx q,
                                     const TruncationConfig& trunc,
                                     linalg::ExecPolicy policy,
                                     TruncationStats* stats = nullptr);

/// Gate dispatcher: routes 1q gates to the contraction path and adjacent 2q
/// gates to the SVD path. Non-adjacent 2q gates are a precondition
/// violation — run circuit::route_to_chain first.
void apply_gate(Mps& psi, const circuit::Gate& g, const TruncationConfig& trunc,
                linalg::ExecPolicy policy, TruncationStats* stats = nullptr);

}  // namespace qkmps::mps
