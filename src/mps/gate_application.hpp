#pragma once

#include "circuit/gate.hpp"
#include "linalg/policy.hpp"
#include "linalg/svd.hpp"
#include "mps/mps.hpp"
#include "mps/truncation.hpp"

namespace qkmps::mps {

/// Applies a single-qubit gate to site q: a pure contraction with the site
/// tensor (Fig. 1a); bond dimensions are unchanged and no truncation is
/// needed.
void apply_single_qubit_gate(Mps& psi, const linalg::Matrix& u, idx q);

/// Applies a two-qubit gate on adjacent sites (q, q+1) following Fig. 1b:
/// move the orthogonality center to the bond, contract the two site tensors
/// with the gate into a theta tensor, SVD, truncate per `trunc` (Eq. 8),
/// and absorb the singular values into the right factor (leaving the center
/// at q+1). `u` is 4x4 in the |q, q+1> basis. Returns the discarded weight.
double apply_adjacent_two_qubit_gate(Mps& psi, const linalg::Matrix& u, idx q,
                                     const TruncationConfig& trunc,
                                     linalg::ExecPolicy policy,
                                     TruncationStats* stats = nullptr);

/// Gate dispatcher: routes 1q gates to the contraction path and adjacent 2q
/// gates to the SVD path. Non-adjacent 2q gates are a precondition
/// violation — run circuit::route_to_chain first.
void apply_gate(Mps& psi, const circuit::Gate& g, const TruncationConfig& trunc,
                linalg::ExecPolicy policy, TruncationStats* stats = nullptr);

/// Staged state of one two-qubit gate application, decomposing Fig. 1b
/// into phases so the batched driver (mps/batched_apply.cpp) can collect
/// the gemm/SVD work of many independent states and submit it to the
/// batched kernel layer (linalg/batched.hpp) in lockstep. All buffers are
/// persistent: a step reused gate after gate resizes them in place, so the
/// per-gate heap churn of the hot loop disappears once bond dimensions
/// stabilize. apply_adjacent_two_qubit_gate runs these exact phases
/// serially — one arithmetic path, so batched and sequential execution
/// are bitwise-identical by construction.
struct TwoQubitStep {
  idx q = 0;                ///< left site of the bond
  idx dl = 0, dr = 0, k = 0;  ///< outer-left, outer-right, shared bond dims
  linalg::Matrix gate;      ///< 4x4 in |lo hi> chain order
  linalg::Matrix a_left;    ///< site q matricized (dl*2) x k
  linalg::Matrix b_right;   ///< site q+1 matricized k x (2*dr)
  linalg::Matrix theta;     ///< a_left * b_right
  linalg::Matrix theta_p;   ///< theta permuted to (s0 s1) x (l r)
  linalg::Matrix theta_u;   ///< gate * theta_p
  linalg::Matrix theta_m;   ///< theta_u permuted to (l s0) x (s1 r)
  linalg::SvdResult f;      ///< SVD of theta_m
};

/// Phase 1: canonicalize the bond (q, q+1) and matricize both site
/// tensors into the step. `u` is copied into step.gate.
void stage_two_qubit_gate(Mps& psi, const linalg::Matrix& u, idx q,
                          TwoQubitStep& step, linalg::ExecPolicy policy);

/// Phase 2 (after theta = a_left * b_right): permute into the (s0 s1) x
/// (l r) layout so the gate contraction is a plain 4 x (dl*dr) gemm.
void permute_theta_for_gate(TwoQubitStep& step);

/// Phase 3 (after theta_u = gate * theta_p): permute back to the
/// ((l s0), (s1 r)) bipartition layout for the SVD.
void permute_theta_for_svd(TwoQubitStep& step);

/// Phase 4 (after step.f = svd(theta_m)): truncate per `trunc`, write the
/// two site tensors back, land the center at q+1. Returns the discarded
/// weight (and records it into `stats` when non-null).
double commit_two_qubit_gate(Mps& psi, TwoQubitStep& step,
                             const TruncationConfig& trunc,
                             TruncationStats* stats);

/// The |q0 q1> -> |lo hi> gate-matrix reordering used by apply_gate for
/// descending-index two-qubit gates; exposed for the batched driver.
linalg::Matrix chain_ordered_gate(const circuit::Gate& g);

}  // namespace qkmps::mps
