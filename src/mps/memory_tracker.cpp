#include "mps/memory_tracker.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qkmps::mps {

void MemoryTracker::record(idx gates_applied, std::size_t bytes, idx max_bond) {
  samples_.push_back({gates_applied, bytes, max_bond});
  peak_bytes_ = std::max(peak_bytes_, bytes);
  peak_bond_ = std::max(peak_bond_, max_bond);
}

double MemoryTracker::bytes_at_progress(double fraction) const {
  QKMPS_CHECK(!samples_.empty());
  QKMPS_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const idx total = samples_.back().gates_applied;
  if (total == 0) return static_cast<double>(samples_.back().bytes);
  const double target = fraction * static_cast<double>(total);

  const Sample* prev = &samples_.front();
  for (const Sample& s : samples_) {
    if (static_cast<double>(s.gates_applied) >= target) {
      const double g0 = static_cast<double>(prev->gates_applied);
      const double g1 = static_cast<double>(s.gates_applied);
      if (g1 == g0) return static_cast<double>(s.bytes);
      const double w = (target - g0) / (g1 - g0);
      return (1.0 - w) * static_cast<double>(prev->bytes) +
             w * static_cast<double>(s.bytes);
    }
    prev = &s;
  }
  return static_cast<double>(samples_.back().bytes);
}

void MemoryTracker::clear() {
  samples_.clear();
  peak_bytes_ = 0;
  peak_bond_ = 1;
}

}  // namespace qkmps::mps
