#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace qkmps::mps {

/// Records the MPS heap footprint after every gate — the instrumentation
/// behind Fig. 6 ("memory required to store the MPS throughout the
/// simulation", x-axis = percentage of gates applied).
class MemoryTracker {
 public:
  struct Sample {
    idx gates_applied = 0;
    std::size_t bytes = 0;
    idx max_bond = 1;
  };

  void record(idx gates_applied, std::size_t bytes, idx max_bond);

  const std::vector<Sample>& samples() const { return samples_; }
  std::size_t peak_bytes() const { return peak_bytes_; }
  idx peak_bond() const { return peak_bond_; }

  /// Linear interpolation of the footprint at a fractional progress point
  /// in [0, 1]; lets the bench align runs with different gate counts on a
  /// common x-axis exactly as Fig. 6 does.
  double bytes_at_progress(double fraction) const;

  void clear();

 private:
  std::vector<Sample> samples_;
  std::size_t peak_bytes_ = 0;
  idx peak_bond_ = 1;
};

}  // namespace qkmps::mps
