#pragma once

#include <optional>
#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/batched.hpp"
#include "linalg/policy.hpp"
#include "mps/memory_tracker.hpp"
#include "mps/mps.hpp"
#include "mps/truncation.hpp"

namespace qkmps::mps {

/// Configuration of one simulation backend instance. The policy selects
/// the reference (CPU-stand-in) or accelerated (GPU-stand-in) dense
/// kernels — both run the *same* MPS algorithm, mirroring the paper's
/// "both libraries use the same MPS simulation algorithm" setup, so bond
/// dimensions must agree between policies (Table I's consistency check).
struct SimulatorConfig {
  linalg::ExecPolicy policy = linalg::ExecPolicy::Reference;
  TruncationConfig truncation;
  bool track_memory = false;  ///< record a Fig.6-style footprint profile
};

/// Outcome of simulating one circuit.
struct SimulationResult {
  Mps state;
  TruncationStats truncation;
  MemoryTracker memory;        ///< empty unless track_memory
  double seconds = 0.0;        ///< wall-clock simulation time
  idx gates_applied = 0;
};

/// MPS circuit simulator (Sec. II-B). Circuits must be nearest-neighbour;
/// if not, they are routed through circuit::route_to_chain transparently.
class MpsSimulator {
 public:
  explicit MpsSimulator(SimulatorConfig config = {});

  const SimulatorConfig& config() const { return config_; }

  /// Simulates `c` starting from |0...0>.
  SimulationResult simulate(const circuit::Circuit& c) const;

  /// Simulates `c` starting from a caller-provided state (e.g. |+>^m).
  SimulationResult simulate(const circuit::Circuit& c, Mps initial) const;

  /// Simulates a batch of independent circuits (each from |0...0>) in
  /// lockstep: all states advance together and each round's two-qubit-gate
  /// gemm/SVD work across the batch is submitted to the batched kernel
  /// layer as one pass (linalg/batched.hpp), under `kernels`' backend and
  /// thread budget (the per-matrix policy is taken from this simulator's
  /// config, overriding kernels.policy). Per-circuit results — states,
  /// truncation stats, memory profiles — are bitwise-identical to
  /// simulate() on each circuit alone; batching is a scheduling choice.
  /// SimulationResult::seconds reports the whole batch's wall time in
  /// every entry (lockstep execution has no per-circuit wall time).
  std::vector<SimulationResult> simulate_batch(
      const std::vector<circuit::Circuit>& circuits,
      const linalg::KernelBatchConfig& kernels) const;

 private:
  SimulatorConfig config_;
};

}  // namespace qkmps::mps
