#pragma once

#include <vector>

#include "linalg/policy.hpp"
#include "mps/mps.hpp"

namespace qkmps::mps {

/// Single-qubit Pauli expectation values <psi| P_q |psi> computed from the
/// MPS. With the orthogonality center moved to site q, the expectation is
/// a purely local contraction of the center tensor — O(chi^2) per site.
/// These are the measurements the *projected* quantum kernel (Huang et al.
/// [12], mentioned in Sec. I of the paper) feeds to a classical kernel.
double expectation_x(Mps& psi, idx q,
                     linalg::ExecPolicy policy = linalg::ExecPolicy::Reference);
double expectation_y(Mps& psi, idx q,
                     linalg::ExecPolicy policy = linalg::ExecPolicy::Reference);
double expectation_z(Mps& psi, idx q,
                     linalg::ExecPolicy policy = linalg::ExecPolicy::Reference);

/// All three Pauli expectations on every qubit, packed as
/// [<X_0>, <Y_0>, <Z_0>, <X_1>, ...] — the projected feature vector of one
/// data point (3m real features).
std::vector<double> pauli_feature_vector(
    Mps psi, linalg::ExecPolicy policy = linalg::ExecPolicy::Reference);

/// Nearest-neighbour ZZ correlator <Z_q Z_{q+1}>; exposed for richer
/// projected feature maps and for entanglement diagnostics in tests.
double correlation_zz(Mps& psi, idx q,
                      linalg::ExecPolicy policy = linalg::ExecPolicy::Reference);

}  // namespace qkmps::mps
