#pragma once

#include "linalg/policy.hpp"
#include "mps/mps.hpp"

namespace qkmps::mps {

/// <a|b> via the zipper contraction of Fig. 2: sweep left to right keeping
/// an environment matrix E (chi_a x chi_b); per site, two GEMMs extend E by
/// one column of the ladder. Time O(m chi^3), memory O(chi^2) — the kernel
/// whose CPU/GPU crossover Fig. 5b studies.
cplx inner_product(const Mps& a, const Mps& b,
                   linalg::ExecPolicy policy = linalg::ExecPolicy::Reference);

/// Kernel entry K = |<a|b>|^2 (Eq. 1).
double overlap_squared(const Mps& a, const Mps& b,
                       linalg::ExecPolicy policy = linalg::ExecPolicy::Reference);

}  // namespace qkmps::mps
