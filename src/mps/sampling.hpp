#pragma once

#include <vector>

#include "mps/mps.hpp"
#include "util/rng.hpp"

namespace qkmps::mps {

/// Perfect (autoregressive) sampling of computational-basis bitstrings from
/// a normalized MPS: sweep left to right, measure each site conditioned on
/// the outcomes so far. O(m chi^2) per sample, no statevector needed.
///
/// This is the simulator-side model of running the feature-map circuit on
/// *hardware* and measuring — the route the paper contrasts with MPS
/// simulation (Sec. I: hardware noise and finite sampling degrade kernel
/// estimates via exponential concentration [15]). The shot-noise kernel
/// estimator in kernel/shot_kernel.hpp builds on it.
std::vector<int> sample_bitstring(const Mps& psi, Rng& rng);

/// Draws `shots` bitstrings.
std::vector<std::vector<int>> sample_bitstrings(const Mps& psi, idx shots,
                                                Rng& rng);

/// Probability of one computational basis state |bits>; O(m chi^2).
double bitstring_probability(const Mps& psi, const std::vector<int>& bits);

}  // namespace qkmps::mps
