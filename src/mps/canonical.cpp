#include "mps/canonical.hpp"

#include "linalg/gemm.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "util/error.hpp"

namespace qkmps::mps {

void shift_center_right(Mps& psi, linalg::ExecPolicy policy) {
  const idx c = psi.center();
  QKMPS_CHECK(c + 1 < psi.num_sites());

  SiteTensor& s = psi.site(c);
  const linalg::QrResult qr = linalg::qr_thin(s.as_left_matrix());
  s = SiteTensor::from_left_matrix(qr.q, s.left);

  SiteTensor& t = psi.site(c + 1);
  // next <- R * next over the shared bond.
  const linalg::Matrix merged = linalg::gemm(qr.r, t.as_right_matrix(), policy);
  t = SiteTensor::from_right_matrix(merged, t.right);
  psi.set_center(c + 1);
}

void shift_center_left(Mps& psi, linalg::ExecPolicy policy) {
  const idx c = psi.center();
  QKMPS_CHECK(c - 1 >= 0);

  SiteTensor& s = psi.site(c);
  const linalg::LqResult lq = linalg::lq_thin(s.as_right_matrix());
  s = SiteTensor::from_right_matrix(lq.q, s.right);

  SiteTensor& t = psi.site(c - 1);
  const linalg::Matrix merged = linalg::gemm(t.as_left_matrix(), lq.l, policy);
  t = SiteTensor::from_left_matrix(merged, t.left);
  psi.set_center(c - 1);
}

void move_center(Mps& psi, idx target, linalg::ExecPolicy policy) {
  QKMPS_CHECK(target >= 0 && target < psi.num_sites());
  while (psi.center() < target) shift_center_right(psi, policy);
  while (psi.center() > target) shift_center_left(psi, policy);
}

double left_orthonormality_defect(const Mps& psi, idx site) {
  const linalg::Matrix m = psi.site(site).as_left_matrix();
  return linalg::orthonormality_defect(m);
}

double right_orthonormality_defect(const Mps& psi, idx site) {
  // Right-orthonormal means the (left | physical,right) matricization has
  // orthonormal rows.
  const linalg::Matrix m = psi.site(site).as_right_matrix().adjoint();
  return linalg::orthonormality_defect(m);
}

}  // namespace qkmps::mps
