#pragma once

#include <iosfwd>
#include <string>

#include "kernel/kernel_matrix.hpp"
#include "mps/mps.hpp"

namespace qkmps::mps {

/// Binary (de)serialization of MPS states and kernel matrices. In the
/// paper's workflow the training-stage MPS are kept resident across
/// processes for later inference (Sec. III-A, "assuming the MPS of each of
/// the quantum states from the training stage are stored in memory");
/// persisting them makes the train-once / infer-later split work across
/// program runs too. Format: little-endian, versioned magic header.

void save_mps(const Mps& psi, std::ostream& os);
Mps load_mps(std::istream& is);

void save_mps(const Mps& psi, const std::string& path);
Mps load_mps(const std::string& path);

/// Kernel (Gram) matrices, e.g. a precomputed training kernel.
void save_kernel(const kernel::RealMatrix& k, const std::string& path);
kernel::RealMatrix load_kernel(const std::string& path);

}  // namespace qkmps::mps
