#include "mps/gate_application.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "linalg/gemm.hpp"
#include "linalg/svd.hpp"
#include "mps/canonical.hpp"
#include "util/error.hpp"

namespace qkmps::mps {

void apply_single_qubit_gate(Mps& psi, const linalg::Matrix& u, idx q) {
  QKMPS_CHECK(q >= 0 && q < psi.num_sites());
  QKMPS_CHECK(u.rows() == 2 && u.cols() == 2);
  SiteTensor& t = psi.site(q);
  for (idx l = 0; l < t.left; ++l) {
    for (idx r = 0; r < t.right; ++r) {
      const cplx a0 = t.at(l, 0, r);
      const cplx a1 = t.at(l, 1, r);
      t.at(l, 0, r) = u(0, 0) * a0 + u(0, 1) * a1;
      t.at(l, 1, r) = u(1, 0) * a0 + u(1, 1) * a1;
    }
  }
}

void stage_two_qubit_gate(Mps& psi, const linalg::Matrix& u, idx q,
                          TwoQubitStep& step, linalg::ExecPolicy policy) {
  QKMPS_CHECK(q >= 0 && q + 1 < psi.num_sites());
  QKMPS_CHECK(u.rows() == 4 && u.cols() == 4);

  // Canonicalize so the bond (q, q+1) is optimal to truncate.
  if (psi.center() < q) move_center(psi, q, policy);
  if (psi.center() > q + 1) move_center(psi, q + 1, policy);

  const SiteTensor& a = psi.site(q);
  const SiteTensor& b = psi.site(q + 1);
  step.q = q;
  step.dl = a.left;
  step.dr = b.right;
  step.k = a.right;
  QKMPS_CHECK(b.left == step.k);

  step.gate = u;
  // The (left, physical) x right and left x (physical, right) groupings
  // are reshapes of the row-major site storage — straight copies into the
  // step's persistent buffers.
  step.a_left.resize_for_overwrite(step.dl * 2, step.k);
  std::copy(a.a.begin(), a.a.end(), step.a_left.data());
  step.b_right.resize_for_overwrite(step.k, 2 * step.dr);
  std::copy(b.a.begin(), b.a.end(), step.b_right.data());
}

void permute_theta_for_gate(TwoQubitStep& step) {
  // theta[l, s0, s1, r] -> theta_p[(s0 s1), (l r)]: the gate contraction
  // becomes a plain 4 x (dl*dr) GEMM.
  const idx dl = step.dl, dr = step.dr;
  step.theta_p.resize_for_overwrite(4, dl * dr);
  for (idx s0 = 0; s0 < 2; ++s0)
    for (idx s1 = 0; s1 < 2; ++s1)
      for (idx l = 0; l < dl; ++l)
        for (idx r = 0; r < dr; ++r)
          step.theta_p(s0 * 2 + s1, l * dr + r) =
              step.theta(l * 2 + s0, s1 * dr + r);
}

void permute_theta_for_svd(TwoQubitStep& step) {
  // Back to ((l s0), (s1 r)) layout for the bipartition SVD.
  const idx dl = step.dl, dr = step.dr;
  step.theta_m.resize_for_overwrite(dl * 2, 2 * dr);
  for (idx s0 = 0; s0 < 2; ++s0)
    for (idx s1 = 0; s1 < 2; ++s1)
      for (idx l = 0; l < dl; ++l)
        for (idx r = 0; r < dr; ++r)
          step.theta_m(l * 2 + s0, s1 * dr + r) =
              step.theta_u(s0 * 2 + s1, l * dr + r);
}

double commit_two_qubit_gate(Mps& psi, TwoQubitStep& step,
                             const TruncationConfig& trunc,
                             TruncationStats* stats) {
  linalg::SvdResult& f = step.f;
  const idx keep =
      linalg::truncation_rank(f.s, trunc.max_discarded_weight, trunc.max_bond);
  double discarded = 0.0;
  for (std::size_t i = static_cast<std::size_t>(keep); i < f.s.size(); ++i)
    discarded += f.s[i] * f.s[i];
  linalg::truncate_svd(f, keep);

  // Left site gets U (left-orthonormal); the singular values are contracted
  // into the right factor (Fig. 1b, last step), so the center lands on q+1.
  psi.site(step.q) = SiteTensor::from_left_matrix(f.u, step.dl);
  for (idx i = 0; i < keep; ++i) {
    const double s = f.s[static_cast<std::size_t>(i)];
    for (idx j = 0; j < f.vh.cols(); ++j) f.vh(i, j) *= s;
  }
  psi.site(step.q + 1) = SiteTensor::from_right_matrix(f.vh, step.dr);
  psi.set_center(step.q + 1);

  if (stats != nullptr) stats->record(discarded, keep);
  return discarded;
}

double apply_adjacent_two_qubit_gate(Mps& psi, const linalg::Matrix& u, idx q,
                                     const TruncationConfig& trunc,
                                     linalg::ExecPolicy policy,
                                     TruncationStats* stats) {
  // The serial path runs the same four phases the batched driver submits
  // to the batched kernel layer — one arithmetic path for both.
  TwoQubitStep step;
  stage_two_qubit_gate(psi, u, q, step, policy);
  linalg::gemm_into(step.theta, step.a_left, step.b_right, policy);
  permute_theta_for_gate(step);
  linalg::gemm_into(step.theta_u, step.gate, step.theta_p, policy);
  permute_theta_for_svd(step);
  step.f = linalg::svd(step.theta_m, policy);
  return commit_two_qubit_gate(psi, step, trunc, stats);
}

linalg::Matrix chain_ordered_gate(const circuit::Gate& g) {
  linalg::Matrix u = g.matrix();
  if (g.q0 > g.q1) {
    // Gate matrix is in |q0 q1> order; sites want |lo hi>. Conjugate by the
    // qubit-swap permutation of the 4x4 matrix.
    linalg::Matrix w(4, 4);
    const auto flip = [](idx b) { return ((b & 1) << 1) | (b >> 1); };
    for (idx i = 0; i < 4; ++i)
      for (idx j = 0; j < 4; ++j) w(flip(i), flip(j)) = u(i, j);
    u = std::move(w);
  }
  return u;
}

void apply_gate(Mps& psi, const circuit::Gate& g, const TruncationConfig& trunc,
                linalg::ExecPolicy policy, TruncationStats* stats) {
  if (!g.is_two_qubit()) {
    apply_single_qubit_gate(psi, g.matrix(), g.q0);
    return;
  }
  QKMPS_CHECK_MSG(std::abs(g.q0 - g.q1) == 1,
                  "non-adjacent two-qubit gate; route the circuit first");
  const idx lo = std::min(g.q0, g.q1);
  apply_adjacent_two_qubit_gate(psi, chain_ordered_gate(g), lo, trunc, policy,
                                stats);
}

}  // namespace qkmps::mps
