#include "mps/gate_application.hpp"

#include <cmath>
#include <cstdlib>

#include "linalg/gemm.hpp"
#include "linalg/svd.hpp"
#include "mps/canonical.hpp"
#include "util/error.hpp"

namespace qkmps::mps {

void apply_single_qubit_gate(Mps& psi, const linalg::Matrix& u, idx q) {
  QKMPS_CHECK(q >= 0 && q < psi.num_sites());
  QKMPS_CHECK(u.rows() == 2 && u.cols() == 2);
  SiteTensor& t = psi.site(q);
  for (idx l = 0; l < t.left; ++l) {
    for (idx r = 0; r < t.right; ++r) {
      const cplx a0 = t.at(l, 0, r);
      const cplx a1 = t.at(l, 1, r);
      t.at(l, 0, r) = u(0, 0) * a0 + u(0, 1) * a1;
      t.at(l, 1, r) = u(1, 0) * a0 + u(1, 1) * a1;
    }
  }
}

double apply_adjacent_two_qubit_gate(Mps& psi, const linalg::Matrix& u, idx q,
                                     const TruncationConfig& trunc,
                                     linalg::ExecPolicy policy,
                                     TruncationStats* stats) {
  QKMPS_CHECK(q >= 0 && q + 1 < psi.num_sites());
  QKMPS_CHECK(u.rows() == 4 && u.cols() == 4);

  // Canonicalize so the bond (q, q+1) is optimal to truncate.
  if (psi.center() < q) move_center(psi, q, policy);
  if (psi.center() > q + 1) move_center(psi, q + 1, policy);

  const SiteTensor& a = psi.site(q);
  const SiteTensor& b = psi.site(q + 1);
  const idx dl = a.left, dr = b.right, k = a.right;
  QKMPS_CHECK(b.left == k);

  // theta[l, s0, s1, r] = sum_k a[l, s0, k] b[k, s1, r]:
  // (dl*2, k) x (k, 2*dr) matrices.
  const linalg::Matrix theta =
      linalg::gemm(a.as_left_matrix(), b.as_right_matrix(), policy);

  // Gate contraction: theta'[(l),(s0' s1'),(r)] =
  //   sum_{s0 s1} U[(s0' s1'), (s0 s1)] theta[l, s0, s1, r].
  // Work in the (s0 s1) x (l r) layout so it is a plain 4 x (dl*dr) GEMM.
  linalg::Matrix theta_p(4, dl * dr);
  for (idx s0 = 0; s0 < 2; ++s0)
    for (idx s1 = 0; s1 < 2; ++s1)
      for (idx l = 0; l < dl; ++l)
        for (idx r = 0; r < dr; ++r)
          theta_p(s0 * 2 + s1, l * dr + r) = theta(l * 2 + s0, s1 * dr + r);
  const linalg::Matrix theta_u = linalg::gemm(u, theta_p, policy);

  // Back to ((l s0), (s1 r)) layout for the bipartition SVD.
  linalg::Matrix theta_m(dl * 2, 2 * dr);
  for (idx s0 = 0; s0 < 2; ++s0)
    for (idx s1 = 0; s1 < 2; ++s1)
      for (idx l = 0; l < dl; ++l)
        for (idx r = 0; r < dr; ++r)
          theta_m(l * 2 + s0, s1 * dr + r) = theta_u(s0 * 2 + s1, l * dr + r);

  linalg::SvdResult f = linalg::svd(theta_m, policy);
  const idx keep =
      linalg::truncation_rank(f.s, trunc.max_discarded_weight, trunc.max_bond);
  double discarded = 0.0;
  for (std::size_t i = static_cast<std::size_t>(keep); i < f.s.size(); ++i)
    discarded += f.s[i] * f.s[i];
  linalg::truncate_svd(f, keep);

  // Left site gets U (left-orthonormal); the singular values are contracted
  // into the right factor (Fig. 1b, last step), so the center lands on q+1.
  psi.site(q) = SiteTensor::from_left_matrix(f.u, dl);
  for (idx i = 0; i < keep; ++i) {
    const double s = f.s[static_cast<std::size_t>(i)];
    for (idx j = 0; j < f.vh.cols(); ++j) f.vh(i, j) *= s;
  }
  psi.site(q + 1) = SiteTensor::from_right_matrix(f.vh, dr);
  psi.set_center(q + 1);

  if (stats != nullptr) stats->record(discarded, keep);
  return discarded;
}

void apply_gate(Mps& psi, const circuit::Gate& g, const TruncationConfig& trunc,
                linalg::ExecPolicy policy, TruncationStats* stats) {
  if (!g.is_two_qubit()) {
    apply_single_qubit_gate(psi, g.matrix(), g.q0);
    return;
  }
  QKMPS_CHECK_MSG(std::abs(g.q0 - g.q1) == 1,
                  "non-adjacent two-qubit gate; route the circuit first");
  const idx lo = std::min(g.q0, g.q1);
  linalg::Matrix u = g.matrix();
  if (g.q0 > g.q1) {
    // Gate matrix is in |q0 q1> order; sites want |lo hi>. Conjugate by the
    // qubit-swap permutation of the 4x4 matrix.
    linalg::Matrix w(4, 4);
    const auto flip = [](idx b) { return ((b & 1) << 1) | (b >> 1); };
    for (idx i = 0; i < 4; ++i)
      for (idx j = 0; j < 4; ++j) w(flip(i), flip(j)) = u(i, j);
    u = std::move(w);
  }
  apply_adjacent_two_qubit_gate(psi, u, lo, trunc, policy, stats);
}

}  // namespace qkmps::mps
