#include "mps/serialization.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/binary_io.hpp"
#include "util/error.hpp"

namespace qkmps::mps {

namespace {

using io::read_pod;
using io::write_pod;

constexpr std::uint32_t kMpsMagic = 0x51'4B'4D'53;     // "QKMS"
constexpr std::uint32_t kKernelMagic = 0x51'4B'4B'4D;  // "QKKM"
constexpr std::uint32_t kVersion = 1;

}  // namespace

void save_mps(const Mps& psi, std::ostream& os) {
  write_pod(os, kMpsMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::int64_t>(psi.num_sites()));
  write_pod(os, static_cast<std::int64_t>(psi.center()));
  for (idx i = 0; i < psi.num_sites(); ++i) {
    const SiteTensor& t = psi.site(i);
    write_pod(os, static_cast<std::int64_t>(t.left));
    write_pod(os, static_cast<std::int64_t>(t.right));
    os.write(reinterpret_cast<const char*>(t.a.data()),
             static_cast<std::streamsize>(t.a.size() * sizeof(cplx)));
  }
  QKMPS_CHECK_MSG(os.good(), "MPS write failure");
}

Mps load_mps(std::istream& is) {
  QKMPS_CHECK_MSG(read_pod<std::uint32_t>(is) == kMpsMagic, "not an MPS file");
  QKMPS_CHECK_MSG(read_pod<std::uint32_t>(is) == kVersion,
                  "unsupported MPS file version");
  const auto sites = static_cast<idx>(read_pod<std::int64_t>(is));
  const auto center = static_cast<idx>(read_pod<std::int64_t>(is));
  QKMPS_CHECK(sites >= 1 && center >= 0 && center < sites);

  Mps psi(sites);
  idx prev_right = 1;
  for (idx i = 0; i < sites; ++i) {
    const auto left = static_cast<idx>(read_pod<std::int64_t>(is));
    const auto right = static_cast<idx>(read_pod<std::int64_t>(is));
    QKMPS_CHECK_MSG(left == prev_right, "inconsistent bond dimensions");
    QKMPS_CHECK(left >= 1 && right >= 1);
    SiteTensor t(left, right);
    is.read(reinterpret_cast<char*>(t.a.data()),
            static_cast<std::streamsize>(t.a.size() * sizeof(cplx)));
    QKMPS_CHECK_MSG(is.good(), "truncated MPS payload");
    psi.site(i) = std::move(t);
    prev_right = right;
  }
  QKMPS_CHECK_MSG(prev_right == 1, "open boundary bond must close at 1");
  psi.set_center(center);
  return psi;
}

void save_mps(const Mps& psi, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  QKMPS_CHECK_MSG(os.good(), "cannot open " << path);
  save_mps(psi, os);
}

Mps load_mps(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  QKMPS_CHECK_MSG(is.good(), "cannot open " << path);
  return load_mps(is);
}

void save_kernel(const kernel::RealMatrix& k, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  QKMPS_CHECK_MSG(os.good(), "cannot open " << path);
  write_pod(os, kKernelMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::int64_t>(k.rows()));
  write_pod(os, static_cast<std::int64_t>(k.cols()));
  os.write(reinterpret_cast<const char*>(k.data()),
           static_cast<std::streamsize>(static_cast<std::size_t>(k.rows()) *
                                        static_cast<std::size_t>(k.cols()) *
                                        sizeof(double)));
  QKMPS_CHECK_MSG(os.good(), "kernel write failure");
}

kernel::RealMatrix load_kernel(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  QKMPS_CHECK_MSG(is.good(), "cannot open " << path);
  QKMPS_CHECK_MSG(read_pod<std::uint32_t>(is) == kKernelMagic,
                  "not a kernel file");
  QKMPS_CHECK_MSG(read_pod<std::uint32_t>(is) == kVersion,
                  "unsupported kernel file version");
  const auto rows = static_cast<idx>(read_pod<std::int64_t>(is));
  const auto cols = static_cast<idx>(read_pod<std::int64_t>(is));
  QKMPS_CHECK(rows >= 0 && cols >= 0);
  kernel::RealMatrix k(rows, cols);
  is.read(reinterpret_cast<char*>(k.data()),
          static_cast<std::streamsize>(static_cast<std::size_t>(rows) *
                                       static_cast<std::size_t>(cols) *
                                       sizeof(double)));
  QKMPS_CHECK_MSG(is.good(), "truncated kernel payload");
  return k;
}

}  // namespace qkmps::mps
