#pragma once

#include <vector>

#include "linalg/policy.hpp"
#include "mps/mps.hpp"

namespace qkmps::mps {

/// Entanglement diagnostics. The bond dimension chi that drives every cost
/// in the simulator (Sec. II-B: "the bond dimension depends on the strength
/// of the entanglement present in the quantum state") is the *count* of
/// retained Schmidt values; these helpers expose the values themselves.

/// Schmidt coefficients across the bond between sites `bond` and `bond+1`,
/// descending. For a normalized state their squares sum to 1.
std::vector<double> schmidt_values(
    Mps psi, idx bond, linalg::ExecPolicy policy = linalg::ExecPolicy::Reference);

/// Von Neumann entanglement entropy S = -sum p_i ln p_i (p_i = s_i^2)
/// across one bond; 0 for product states, ln(2) for a Bell pair.
double entanglement_entropy(
    const Mps& psi, idx bond,
    linalg::ExecPolicy policy = linalg::ExecPolicy::Reference);

/// Entropy profile across every bond of the chain.
std::vector<double> entropy_profile(
    const Mps& psi, linalg::ExecPolicy policy = linalg::ExecPolicy::Reference);

}  // namespace qkmps::mps
