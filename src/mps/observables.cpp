#include "mps/observables.hpp"

#include "mps/canonical.hpp"
#include "util/error.hpp"

namespace qkmps::mps {

namespace {

/// <psi| P_q |psi> for a 2x2 Hermitian P with the center at q: contract the
/// center tensor with P on the physical leg and with its own conjugate on
/// both bonds. Canonical sites away from the center collapse to identity.
double local_expectation(Mps& psi, idx q, const cplx p[2][2],
                         linalg::ExecPolicy policy) {
  QKMPS_CHECK(q >= 0 && q < psi.num_sites());
  move_center(psi, q, policy);
  const SiteTensor& t = psi.site(q);
  cplx acc = 0.0;
  for (idx l = 0; l < t.left; ++l)
    for (idx r = 0; r < t.right; ++r)
      for (idx sp = 0; sp < 2; ++sp)
        for (idx s = 0; s < 2; ++s)
          acc += std::conj(t.at(l, sp, r)) * p[sp][s] * t.at(l, s, r);
  return acc.real();
}

}  // namespace

double expectation_x(Mps& psi, idx q, linalg::ExecPolicy policy) {
  static const cplx x[2][2] = {{0.0, 1.0}, {1.0, 0.0}};
  return local_expectation(psi, q, x, policy);
}

double expectation_y(Mps& psi, idx q, linalg::ExecPolicy policy) {
  static const cplx y[2][2] = {{0.0, cplx(0.0, -1.0)}, {cplx(0.0, 1.0), 0.0}};
  return local_expectation(psi, q, y, policy);
}

double expectation_z(Mps& psi, idx q, linalg::ExecPolicy policy) {
  static const cplx z[2][2] = {{1.0, 0.0}, {0.0, -1.0}};
  return local_expectation(psi, q, z, policy);
}

std::vector<double> pauli_feature_vector(Mps psi, linalg::ExecPolicy policy) {
  const idx m = psi.num_sites();
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(3 * m));
  // Sweep left to right so each move_center is a single QR shift.
  for (idx q = 0; q < m; ++q) {
    out.push_back(expectation_x(psi, q, policy));
    out.push_back(expectation_y(psi, q, policy));
    out.push_back(expectation_z(psi, q, policy));
  }
  return out;
}

double correlation_zz(Mps& psi, idx q, linalg::ExecPolicy policy) {
  QKMPS_CHECK(q >= 0 && q + 1 < psi.num_sites());
  move_center(psi, q, policy);
  const SiteTensor& a = psi.site(q);
  const SiteTensor& b = psi.site(q + 1);

  // E[k][k'] = sum_{l,s} conj(a[l,s,k]) z_s a[l,s,k'] with z_s = +/-1;
  // then contract with the (right-orthonormal) neighbour dressed by Z.
  const idx chi = a.right;
  std::vector<cplx> env(static_cast<std::size_t>(chi * chi), cplx(0.0));
  for (idx l = 0; l < a.left; ++l)
    for (idx s = 0; s < 2; ++s) {
      const double zs = (s == 0) ? 1.0 : -1.0;
      for (idx k = 0; k < chi; ++k)
        for (idx kp = 0; kp < chi; ++kp)
          env[static_cast<std::size_t>(k * chi + kp)] +=
              std::conj(a.at(l, s, k)) * zs * a.at(l, s, kp);
    }

  cplx acc = 0.0;
  for (idx k = 0; k < chi; ++k)
    for (idx kp = 0; kp < chi; ++kp) {
      const cplx e = env[static_cast<std::size_t>(k * chi + kp)];
      if (e == cplx(0.0)) continue;
      for (idx s = 0; s < 2; ++s) {
        const double zs = (s == 0) ? 1.0 : -1.0;
        for (idx r = 0; r < b.right; ++r)
          acc += e * std::conj(b.at(k, s, r)) * zs * b.at(kp, s, r);
      }
    }
  return acc.real();
}

}  // namespace qkmps::mps
