/// Quickstart: the whole quantum-kernel workflow in ~60 lines.
///
///   data -> rescale to (0,2) -> MPS-simulated feature map |psi(x)>
///        -> Gram matrix K_ij = |<psi(x_i)|psi(x_j)>|^2 -> SVM -> metrics.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <cstdio>

#include "qkmps.hpp"

using namespace qkmps;

int main() {
  // 1. Data: a balanced sample from the synthetic Elliptic-like pool.
  data::EllipticSyntheticParams gen;
  gen.num_points = 2000;
  gen.num_features = 10;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);

  Rng rng(42);
  const data::Dataset sample = data::balanced_subsample(pool, 100, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);
  std::printf("train: %lld points, test: %lld points, %lld features\n",
              static_cast<long long>(split.train.size()),
              static_cast<long long>(split.test.size()),
              static_cast<long long>(split.train.num_features()));

  // 2. Rescale features into the ansatz domain (0, 2) using train statistics.
  const data::FeatureScaler scaler = data::FeatureScaler::fit(split.train.x);
  const auto x_train = scaler.transform(split.train.x);
  const auto x_test = scaler.transform(split.test.x);

  // 3. Quantum kernel: one MPS simulation per data point, then pairwise
  //    overlaps. One circuit per point — the linear-scaling trick.
  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = 10, .layers = 2, .distance = 1, .gamma = 0.5};
  // gamma is the kernel bandwidth (Sec. II-A); 0.5 suits ~10 features.
  // More features need smaller gamma — see examples/fraud_detection.cpp
  // for a bandwidth sweep.

  kernel::GramStats stats;
  const auto train_states = kernel::simulate_states(cfg, x_train, &stats);
  const auto test_states = kernel::simulate_states(cfg, x_test, &stats);
  const auto k_train = kernel::gram_from_states(train_states, cfg.sim.policy, &stats);
  const auto k_test =
      kernel::cross_from_states(test_states, train_states, cfg.sim.policy, &stats);
  std::printf("simulated %lld circuits, %lld inner products "
              "(avg max bond dimension %.1f)\n",
              static_cast<long long>(stats.circuits_simulated),
              static_cast<long long>(stats.inner_products), stats.avg_max_bond);

  // 4. SVM with a regularization sweep; report the best test-AUC model.
  const auto sweep = svm::sweep_regularization(k_train, split.train.y, k_test,
                                               split.test.y, svm::default_c_grid());
  const auto& best = svm::best_by_test_auc(sweep);
  std::printf("\nbest model: C=%.2f\n", best.c);
  std::printf("  test AUC       %.3f\n", best.test.auc);
  std::printf("  test accuracy  %.3f\n", best.test.accuracy);
  std::printf("  test precision %.3f\n", best.test.precision);
  std::printf("  test recall    %.3f\n", best.test.recall);
  return 0;
}
