/// Ansatz resource explorer — the paper's Sec. III-A workflow as a tool.
///
/// Before committing to an expensive kernel computation, a practitioner
/// should know which regime their ansatz lives in (the paper's explicit
/// recommendation: "carefully analyze whether their circuit ansatz lies
/// within the CPU-favoured or GPU-favoured regime", using the final bond
/// dimension chi as the decision variable, with chi >= 320 flagging the
/// accelerated regime). This tool sweeps (d, gamma), simulates a few
/// probe circuits, and reports chi, memory, SWAP overhead and timing per
/// configuration.

#include <cstdio>

#include "qkmps.hpp"

using namespace qkmps;

int main(int argc, char** argv) {
  const idx m = argc > 1 ? std::atoll(argv[1]) : 12;
  const idx probes = 3;
  std::printf("ansatz resource explorer: %lld qubits (= features), r=2, "
              "%lld probe circuits per cell\n\n",
              static_cast<long long>(m), static_cast<long long>(probes));

  // Probe data drawn from the synthetic pool, scaled to (0, 2).
  data::EllipticSyntheticParams gen;
  gen.num_points = 500;
  gen.num_features = m;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(pool.x);
  const auto x = scaler.transform(pool.x);

  std::printf("%4s %6s %10s %10s %12s %12s %12s %10s\n", "d", "gamma",
              "2q gates", "swaps", "max chi", "MPS KiB", "sim (s)", "regime");

  const mps::MpsSimulator sim;
  for (idx d : {1, 2, 3, 4, 6}) {
    for (double gamma : {0.1, 0.5, 1.0}) {
      const circuit::AnsatzParams ansatz{.num_features = m, .layers = 2,
                                         .distance = d, .gamma = gamma};
      idx chi = 1;
      std::size_t bytes = 0;
      double secs = 0.0;
      idx two_q = 0, swaps = 0;
      for (idx i = 0; i < probes; ++i) {
        std::vector<double> row(x.row(i * 7), x.row(i * 7) + m);
        const circuit::Circuit c = circuit::feature_map_circuit(ansatz, row);
        two_q = c.two_qubit_gate_count();
        swaps = circuit::routing_swap_count(c);
        Timer t;
        const auto r = sim.simulate(c);
        secs += t.seconds();
        chi = std::max(chi, r.state.max_bond());
        bytes = std::max(bytes, r.state.memory_bytes());
      }
      // The paper's decision rule (Sec. III-A): chi >= 320 => accelerated
      // (GPU) regime; below that the low-overhead (CPU) path is faster.
      std::printf("%4lld %6.1f %10lld %10lld %12lld %12.1f %12.4f %10s\n",
                  static_cast<long long>(d), gamma,
                  static_cast<long long>(two_q), static_cast<long long>(swaps),
                  static_cast<long long>(chi),
                  static_cast<double>(bytes) / 1024.0,
                  secs / static_cast<double>(probes),
                  chi >= 320 ? "accel/GPU" : "reference/CPU");
    }
  }

  std::printf("\nreading the table: chi is the runtime driver (O(m chi^3)); "
              "memory per MPS is O(m chi^2).\n"
              "The paper's crossover sits near chi ~ 320 (its Table I, d ~ 10);"
              " shallow d=1 ansatze stay at chi ~ 2\n"
              "and are CPU-friendly even at 165 qubits, which is why the "
              "model-quality studies use d=1.\n");
  return 0;
}
