/// Train-once / infer-later with a persisted model bundle.
///
/// The paper's inference story (Sec. III-A) assumes the training-stage MPS
/// stay resident: classifying a new data point only needs one new circuit
/// simulation plus inner products against the stored states. A
/// serve::ModelBundle makes that workflow survive process restarts — and
/// only keeps what inference actually touches (the support vectors, not
/// the full training set):
///
///   phase 1  simulate training states, fit the SVM, save one bundle
///            directory (config + scaler + compacted SVC + SV states)
///   phase 2  (fresh state) reload the bundle, simulate ONLY each new
///            point's circuit, score against the SV states — no
///            retraining, no training-set re-simulation.

#include <cstdio>
#include <filesystem>

#include "qkmps.hpp"

using namespace qkmps;

int main() {
  const std::string dir = "qkmps_model";
  const idx m = 12;

  // ---- Phase 1: train and persist. --------------------------------------
  data::EllipticSyntheticParams gen;
  gen.num_points = 2000;
  gen.num_features = m;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(21);
  const data::Dataset sample = data::balanced_subsample(pool, 50, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(split.train.x);
  const auto x_train = scaler.transform(split.train.x);

  // Bandwidth/regularization from the paper's sweep ranges, picked so the
  // model has a proper SV subset — the bundle then demonstrably persists
  // fewer states than the training set.
  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = 2, .distance = 1, .gamma = 0.1};

  const auto train_states = kernel::simulate_states(cfg, x_train);
  const auto k_train = kernel::gram_from_states(train_states, cfg.sim.policy);

  svm::SvcParams params;
  params.c = 4.0;
  const svm::SvcModel model = svm::train_svc(k_train, split.train.y, params);

  const serve::ModelBundle bundle =
      serve::make_bundle(cfg, scaler, model, train_states);
  serve::save_bundle(bundle, dir);
  std::printf("phase 1: trained on %lld points, bundled %lld support-vector "
              "states (dropped %lld zero-alpha states)\n",
              static_cast<long long>(split.train.size()),
              static_cast<long long>(bundle.num_support_vectors()),
              static_cast<long long>(split.train.size() -
                                     bundle.num_support_vectors()));

  // ---- Phase 2: pretend we restarted; reload and serve new points. ------
  serve::ModelBundle reloaded = serve::load_bundle(dir);
  serve::EngineConfig engine_cfg;
  engine_cfg.max_batch = 16;
  // Moved, not copied: the SV states are the dominant memory cost and the
  // engine keeps its own bundle.
  serve::InferenceEngine engine(std::move(reloaded), engine_cfg);

  std::vector<std::future<serve::Prediction>> futures;
  futures.reserve(static_cast<std::size_t>(split.test.size()));
  for (idx i = 0; i < split.test.size(); ++i)
    futures.push_back(engine.submit(std::vector<double>(
        split.test.x.row(i), split.test.x.row(i) + split.test.x.cols())));

  std::vector<double> decisions;
  decisions.reserve(futures.size());
  for (auto& f : futures) decisions.push_back(f.get().decision_value);
  const auto metrics = svm::evaluate(split.test.y, decisions);

  const serve::EngineStats stats = engine.stats();
  std::printf("phase 2: reloaded bundle, served %llu requests in %llu "
              "micro-batches (%llu circuits simulated)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.circuits_simulated));
  std::printf("  AUC %.3f  accuracy %.3f  precision %.3f  recall %.3f\n",
              metrics.auc, metrics.accuracy, metrics.precision, metrics.recall);

  // Cleanup of the demo artifacts.
  std::filesystem::remove_all(dir);
  return 0;
}
