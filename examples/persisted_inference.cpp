/// Train-once / infer-later with persisted MPS states.
///
/// The paper's inference story (Sec. III-A) assumes the training-stage MPS
/// stay resident: classifying a new data point only needs one new circuit
/// simulation plus N inner products against the stored states. This
/// example makes that workflow survive process restarts:
///
///   phase 1  simulate training states, fit the SVM, save everything
///   phase 2  (fresh state) reload, simulate ONLY the new point's circuit,
///            score it — no retraining, no training-set re-simulation.

#include <cstdio>
#include <filesystem>

#include "qkmps.hpp"

using namespace qkmps;

int main() {
  const std::string dir = "qkmps_model";
  const idx m = 12;

  // ---- Phase 1: train and persist. --------------------------------------
  data::EllipticSyntheticParams gen;
  gen.num_points = 2000;
  gen.num_features = m;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(21);
  const data::Dataset sample = data::balanced_subsample(pool, 50, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(split.train.x);
  const auto x_train = scaler.transform(split.train.x);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = 2, .distance = 1, .gamma = 0.5};

  const auto train_states = kernel::simulate_states(cfg, x_train);
  const auto k_train = kernel::gram_from_states(train_states, cfg.sim.policy);

  svm::SvcParams params;
  params.c = 1.0;
  const svm::SvcModel model = svm::train_svc(k_train, split.train.y, params);

  std::filesystem::create_directories(dir);
  for (std::size_t i = 0; i < train_states.size(); ++i)
    mps::save_mps(train_states[i], dir + "/state_" + std::to_string(i) + ".mps");
  mps::save_kernel(k_train, dir + "/train_kernel.bin");
  std::printf("phase 1: trained on %lld points, persisted %zu MPS states "
              "(%lld support vectors)\n",
              static_cast<long long>(split.train.size()), train_states.size(),
              static_cast<long long>(model.support_vector_count()));

  // ---- Phase 2: pretend we restarted; reload and classify new points. ---
  std::vector<mps::Mps> reloaded;
  reloaded.reserve(train_states.size());
  for (std::size_t i = 0; i < train_states.size(); ++i)
    reloaded.push_back(mps::load_mps(dir + "/state_" + std::to_string(i) + ".mps"));

  const auto x_test = scaler.transform(split.test.x);
  const auto test_states = kernel::simulate_states(cfg, x_test);
  const auto k_test =
      kernel::cross_from_states(test_states, reloaded, cfg.sim.policy);
  const auto metrics = svm::evaluate(split.test.y, model.decision_values(k_test));

  std::printf("phase 2: reloaded states, classified %lld unseen points\n",
              static_cast<long long>(split.test.size()));
  std::printf("  AUC %.3f  accuracy %.3f  precision %.3f  recall %.3f\n",
              metrics.auc, metrics.accuracy, metrics.precision, metrics.recall);

  // Cleanup of the demo artifacts.
  std::filesystem::remove_all(dir);
  return 0;
}
