/// Distributed Gram-matrix computation — Fig. 4's two strategies, live.
///
/// Runs the same kernel computation under the no-messaging strategy
/// (Fig. 4a: zero communication, duplicated simulations) and the
/// round-robin strategy (Fig. 4b: each circuit simulated once, states ride
/// a ring), verifies they agree entry-for-entry with the sequential
/// reference, and prints the cost profile of each — the trade-off the
/// paper discusses in Sec. II-D.

#include <cstdio>

#include "qkmps.hpp"

using namespace qkmps;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const idx n = 48, m = 16;

  data::EllipticSyntheticParams gen;
  gen.num_points = 1000;
  gen.num_features = m;
  const data::Dataset pool = data::generate_elliptic_synthetic(gen);
  Rng rng(11);
  std::vector<idx> rows;
  for (idx i = 0; i < n; ++i)
    rows.push_back(static_cast<idx>(rng.uniform_int(static_cast<std::uint64_t>(pool.size()))));
  const data::Dataset sample = pool.select(rows);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(sample.x);
  const auto x = scaler.transform(sample.x);

  kernel::QuantumKernelConfig cfg;
  cfg.ansatz = {.num_features = m, .layers = 2, .distance = 1, .gamma = 0.5};

  std::printf("Gram matrix on %lld points, %lld features, %d thread-backed ranks\n\n",
              static_cast<long long>(n), static_cast<long long>(m), ranks);

  // Sequential reference.
  kernel::GramStats seq_stats;
  Timer t_seq;
  const auto k_seq = kernel::gram_matrix(cfg, x, &seq_stats);
  const double seq_secs = t_seq.seconds();

  struct Outcome {
    const char* name;
    kernel::RealMatrix k;
    kernel::GramStats stats;
    double wall = 0.0;
  };
  std::vector<Outcome> outcomes;
  for (auto [name, strategy] :
       {std::pair{"no-messaging", kernel::DistributionStrategy::NoMessaging},
        std::pair{"round-robin", kernel::DistributionStrategy::RoundRobin}}) {
    Outcome o{name, {}, {}, 0.0};
    Timer t;
    o.k = kernel::distributed_gram_matrix(cfg, x, ranks, strategy, &o.stats);
    o.wall = t.seconds();
    outcomes.push_back(std::move(o));
  }

  std::printf("%14s %10s %12s %12s %12s %12s\n", "strategy", "wall (s)",
              "circuits", "overlaps", "comm (s)", "max|diff|");
  std::printf("%14s %10.3f %12lld %12lld %12s %12s\n", "sequential", seq_secs,
              static_cast<long long>(seq_stats.circuits_simulated),
              static_cast<long long>(seq_stats.inner_products), "-", "-");
  for (const auto& o : outcomes) {
    std::printf("%14s %10.3f %12lld %12lld %12.4f %12.2e\n", o.name, o.wall,
                static_cast<long long>(o.stats.circuits_simulated),
                static_cast<long long>(o.stats.inner_products),
                o.stats.phases.total("communication"),
                kernel::max_abs_diff(o.k, k_seq));
  }

  std::printf("\nwhat to notice (Sec. II-D):\n"
              " - no-messaging simulates %lld circuits for %lld data points "
              "(duplication across tiles);\n"
              " - round-robin simulates each circuit exactly once and pays a "
              "small communication cost instead;\n"
              " - both reproduce the sequential Gram matrix exactly.\n",
              static_cast<long long>(outcomes[0].stats.circuits_simulated),
              static_cast<long long>(n));
  return 0;
}
