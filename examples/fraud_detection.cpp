/// Fraud detection on an Elliptic-like transaction data set — the paper's
/// motivating application. Walks the production-style pipeline:
///
///   imbalanced pool (~10% illicit) -> balanced down-selection -> 80/20
///   split -> scaling -> quantum kernel vs Gaussian kernel -> SVM ->
///   side-by-side metrics, plus an ROC curve dump for the quantum model.
///
/// Pass a CSV path ("label,f0,f1,..." with labels +/-1) to run on real
/// data — e.g. an export of the actual Kaggle Elliptic data set.

#include <cstdio>

#include "qkmps.hpp"

using namespace qkmps;

int main(int argc, char** argv) {
  data::Dataset pool;
  if (argc > 1) {
    std::printf("loading %s ...\n", argv[1]);
    pool = data::load_csv(argv[1]);
  } else {
    data::EllipticSyntheticParams gen;
    gen.num_points = 6000;
    gen.num_features = 20;
    pool = data::generate_elliptic_synthetic(gen);
  }
  std::printf("pool: %lld transactions, %lld illicit (%.1f%%), %lld features\n",
              static_cast<long long>(pool.size()),
              static_cast<long long>(pool.positives()),
              100.0 * static_cast<double>(pool.positives()) /
                  static_cast<double>(pool.size()),
              static_cast<long long>(pool.num_features()));

  Rng rng(7);
  const data::Dataset sample = data::balanced_subsample(pool, 60, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(split.train.x);
  const auto x_train = scaler.transform(split.train.x);
  const auto x_test = scaler.transform(split.test.x);
  const idx m = x_train.cols();

  // --- Quantum kernel model with a bandwidth sweep. The paper's
  //     hyperparameter study (Table II / refs [26,27]) shows gamma must
  //     shrink as the feature count grows; we sweep a small grid and keep
  //     the best model, exactly as a practitioner would. ------------------
  kernel::QuantumKernelConfig cfg;
  svm::SweepPoint q_best;
  kernel::RealMatrix kq_train, kq_test;
  std::vector<mps::Mps> q_states;
  double best_gamma = 0.0;
  kernel::GramStats stats;
  for (double gamma : {0.1, 0.25, 0.5}) {
    kernel::QuantumKernelConfig trial;
    trial.ansatz = {.num_features = m, .layers = 2, .distance = 1, .gamma = gamma};
    auto train_states = kernel::simulate_states(trial, x_train, &stats);
    const auto test_states = kernel::simulate_states(trial, x_test, &stats);
    auto k_train = kernel::gram_from_states(train_states, trial.sim.policy, &stats);
    auto k_test = kernel::cross_from_states(test_states, train_states,
                                            trial.sim.policy, &stats);
    const auto sweep = svm::sweep_regularization(
        k_train, split.train.y, k_test, split.test.y, svm::default_c_grid());
    const auto& best = svm::best_by_test_auc(sweep);
    if (best.test.auc >= q_best.test.auc) {
      q_best = best;
      best_gamma = gamma;
      cfg = trial;
      kq_train = std::move(k_train);
      kq_test = std::move(k_test);
      q_states = std::move(train_states);
    }
  }
  std::printf("\nquantum bandwidth sweep picked gamma=%.2f\n", best_gamma);

  // --- Gaussian baseline (Eq. 9). ---------------------------------------
  const double alpha = kernel::gaussian_alpha(x_train);
  const auto g_sweep = svm::sweep_regularization(
      kernel::gaussian_gram(x_train, alpha), split.train.y,
      kernel::gaussian_cross(x_test, x_train, alpha), split.test.y,
      svm::default_c_grid());
  const auto& g_best = svm::best_by_test_auc(g_sweep);

  std::printf("\n%12s %8s %8s %10s %10s\n", "kernel", "AUC", "Recall",
              "Precision", "Accuracy");
  std::printf("%12s %8.3f %8.3f %10.3f %10.3f\n", "quantum", q_best.test.auc,
              q_best.test.recall, q_best.test.precision, q_best.test.accuracy);
  std::printf("%12s %8.3f %8.3f %10.3f %10.3f\n", "Gaussian", g_best.test.auc,
              g_best.test.recall, g_best.test.precision, g_best.test.accuracy);

  // --- ROC curve of the winning quantum model. ---------------------------
  svm::SvcParams params;
  params.c = q_best.c;
  const svm::SvcModel model = svm::train_svc(kq_train, split.train.y, params);
  const auto roc = svm::roc_curve(split.test.y, model.decision_values(kq_test));
  std::printf("\nROC curve (quantum kernel, C=%.2f): %zu points\n", q_best.c,
              roc.size());
  for (std::size_t i = 0; i < roc.size(); i += std::max<std::size_t>(1, roc.size() / 8))
    std::printf("  fpr=%.3f tpr=%.3f\n", roc[i].first, roc[i].second);
  std::printf("  fpr=1.000 tpr=1.000\n");

  std::printf("\nresource use: %lld circuits, %lld overlaps, avg chi %.1f, "
              "%.1f KiB per MPS\n",
              static_cast<long long>(stats.circuits_simulated),
              static_cast<long long>(stats.inner_products), stats.avg_max_bond,
              static_cast<double>(stats.avg_mps_bytes) / 1024.0);

  // --- Production-style serving loop. The winning model becomes a
  //     ModelBundle (support vectors only) behind a 2-shard frontend with
  //     a bounded admission queue; a Zipf-hot stream of transactions —
  //     the duplicate traffic a real fraud feed exhibits — is generated
  //     by the deterministic workload scenario machinery and scored
  //     through it. Shed-oldest backpressure: a fraud verdict delivered
  //     after the transaction cleared helps nobody. -----------------------
  serve::ShardedEngineConfig serving_cfg;
  serving_cfg.num_shards = 2;
  serving_cfg.admission_capacity = 64;
  serving_cfg.policy = serve::AdmissionPolicy::kShedOldest;
  serving_cfg.engine.max_batch = 16;
  serve::ShardedEngine engine(
      serve::make_bundle(cfg, scaler, model, q_states), serving_cfg);

  serve::workload::ScenarioConfig stream_cfg;
  stream_cfg.name = "fraud-feed";
  stream_cfg.seed = 99;
  stream_cfg.num_requests = 200;
  stream_cfg.num_unique = std::min<idx>(40, pool.size());
  stream_cfg.keys = serve::workload::KeyPattern::kZipf;
  const serve::workload::Scenario stream =
      serve::workload::make_scenario(stream_cfg, pool.x);

  std::vector<std::future<serve::RoutedPrediction>> futures;
  futures.reserve(static_cast<std::size_t>(stream.size()));
  Timer serve_timer;
  for (idx r = 0; r < stream.size(); ++r)
    futures.push_back(engine.submit(stream.request(r)));
  idx flagged = 0, served = 0, shed = 0;
  for (auto& f : futures) {
    const serve::RoutedPrediction p = f.get();
    if (p.status != serve::ServeStatus::kServed) {
      ++shed;
      continue;
    }
    ++served;
    if (p.prediction.label == 1) ++flagged;
  }
  const double serve_seconds = serve_timer.seconds();

  const serve::ShardedStats ss = engine.stats();
  std::uint64_t circuits = 0, cache_hits = 0, memo_hits = 0;
  for (const serve::ShardStats& shard : ss.shards) {
    circuits += shard.engine.circuits_simulated;
    cache_hits += shard.engine.cache.hits;
    memo_hits += shard.engine.memo.hits;
  }
  std::printf("\nserving: %llu requests in %.2fs (%.0f served/s) across %zu "
              "shards; %llu circuits simulated, %llu cache + %llu memo hits\n",
              static_cast<unsigned long long>(ss.submitted), serve_seconds,
              static_cast<double>(served) / serve_seconds, engine.num_shards(),
              static_cast<unsigned long long>(circuits),
              static_cast<unsigned long long>(cache_hits),
              static_cast<unsigned long long>(memo_hits));
  std::printf("  %lld served (p99 %.2f ms), %lld shed by backpressure; "
              "%lld of the served flagged illicit (%lld support vectors "
              "resident, shared across shards)\n",
              static_cast<long long>(served), ss.p99_drain_ms,
              static_cast<long long>(shed), static_cast<long long>(flagged),
              static_cast<long long>(engine.bundle().num_support_vectors()));
  return 0;
}
