/// Fraud detection on an Elliptic-like transaction data set — the paper's
/// motivating application. Walks the production-style pipeline:
///
///   imbalanced pool (~10% illicit) -> balanced down-selection -> 80/20
///   split -> scaling -> quantum kernel vs Gaussian kernel -> SVM ->
///   side-by-side metrics, plus an ROC curve dump for the quantum model.
///
/// Pass a CSV path ("label,f0,f1,..." with labels +/-1) to run on real
/// data — e.g. an export of the actual Kaggle Elliptic data set.

#include <cstdio>

#include "qkmps.hpp"

using namespace qkmps;

int main(int argc, char** argv) {
  data::Dataset pool;
  if (argc > 1) {
    std::printf("loading %s ...\n", argv[1]);
    pool = data::load_csv(argv[1]);
  } else {
    data::EllipticSyntheticParams gen;
    gen.num_points = 6000;
    gen.num_features = 20;
    pool = data::generate_elliptic_synthetic(gen);
  }
  std::printf("pool: %lld transactions, %lld illicit (%.1f%%), %lld features\n",
              static_cast<long long>(pool.size()),
              static_cast<long long>(pool.positives()),
              100.0 * static_cast<double>(pool.positives()) /
                  static_cast<double>(pool.size()),
              static_cast<long long>(pool.num_features()));

  Rng rng(7);
  const data::Dataset sample = data::balanced_subsample(pool, 60, rng);
  const data::TrainTestSplit split = data::train_test_split(sample, 0.2, rng);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(split.train.x);
  const auto x_train = scaler.transform(split.train.x);
  const auto x_test = scaler.transform(split.test.x);
  const idx m = x_train.cols();

  // --- Quantum kernel model with a bandwidth sweep. The paper's
  //     hyperparameter study (Table II / refs [26,27]) shows gamma must
  //     shrink as the feature count grows; we sweep a small grid and keep
  //     the best model, exactly as a practitioner would. ------------------
  kernel::QuantumKernelConfig cfg;
  svm::SweepPoint q_best;
  kernel::RealMatrix kq_train, kq_test;
  std::vector<mps::Mps> q_states;
  double best_gamma = 0.0;
  kernel::GramStats stats;
  for (double gamma : {0.1, 0.25, 0.5}) {
    kernel::QuantumKernelConfig trial;
    trial.ansatz = {.num_features = m, .layers = 2, .distance = 1, .gamma = gamma};
    auto train_states = kernel::simulate_states(trial, x_train, &stats);
    const auto test_states = kernel::simulate_states(trial, x_test, &stats);
    auto k_train = kernel::gram_from_states(train_states, trial.sim.policy, &stats);
    auto k_test = kernel::cross_from_states(test_states, train_states,
                                            trial.sim.policy, &stats);
    const auto sweep = svm::sweep_regularization(
        k_train, split.train.y, k_test, split.test.y, svm::default_c_grid());
    const auto& best = svm::best_by_test_auc(sweep);
    if (best.test.auc >= q_best.test.auc) {
      q_best = best;
      best_gamma = gamma;
      cfg = trial;
      kq_train = std::move(k_train);
      kq_test = std::move(k_test);
      q_states = std::move(train_states);
    }
  }
  std::printf("\nquantum bandwidth sweep picked gamma=%.2f\n", best_gamma);

  // --- Gaussian baseline (Eq. 9). ---------------------------------------
  const double alpha = kernel::gaussian_alpha(x_train);
  const auto g_sweep = svm::sweep_regularization(
      kernel::gaussian_gram(x_train, alpha), split.train.y,
      kernel::gaussian_cross(x_test, x_train, alpha), split.test.y,
      svm::default_c_grid());
  const auto& g_best = svm::best_by_test_auc(g_sweep);

  std::printf("\n%12s %8s %8s %10s %10s\n", "kernel", "AUC", "Recall",
              "Precision", "Accuracy");
  std::printf("%12s %8.3f %8.3f %10.3f %10.3f\n", "quantum", q_best.test.auc,
              q_best.test.recall, q_best.test.precision, q_best.test.accuracy);
  std::printf("%12s %8.3f %8.3f %10.3f %10.3f\n", "Gaussian", g_best.test.auc,
              g_best.test.recall, g_best.test.precision, g_best.test.accuracy);

  // --- ROC curve of the winning quantum model. ---------------------------
  svm::SvcParams params;
  params.c = q_best.c;
  const svm::SvcModel model = svm::train_svc(kq_train, split.train.y, params);
  const auto roc = svm::roc_curve(split.test.y, model.decision_values(kq_test));
  std::printf("\nROC curve (quantum kernel, C=%.2f): %zu points\n", q_best.c,
              roc.size());
  for (std::size_t i = 0; i < roc.size(); i += std::max<std::size_t>(1, roc.size() / 8))
    std::printf("  fpr=%.3f tpr=%.3f\n", roc[i].first, roc[i].second);
  std::printf("  fpr=1.000 tpr=1.000\n");

  std::printf("\nresource use: %lld circuits, %lld overlaps, avg chi %.1f, "
              "%.1f KiB per MPS\n",
              static_cast<long long>(stats.circuits_simulated),
              static_cast<long long>(stats.inner_products), stats.avg_max_bond,
              static_cast<double>(stats.avg_mps_bytes) / 1024.0);

  // --- Production-style serving loop. The winning model becomes a
  //     ModelBundle (support vectors only) behind an async micro-batching
  //     InferenceEngine; a stream of transactions — with the repeats a
  //     real fraud feed exhibits — is scored through it. ------------------
  serve::ModelBundle bundle = serve::make_bundle(cfg, scaler, model, q_states);
  serve::EngineConfig engine_cfg;
  engine_cfg.max_batch = 16;
  serve::InferenceEngine engine(std::move(bundle), engine_cfg);

  const idx stream_len = 200;
  Rng traffic(99);
  std::vector<std::future<serve::Prediction>> futures;
  futures.reserve(static_cast<std::size_t>(stream_len));
  Timer serve_timer;
  for (idx r = 0; r < stream_len; ++r) {
    // Even requests draw from the whole pool; odd ones re-query a small
    // hot set of recent transactions (duplicate traffic).
    const idx pick =
        (r % 2 == 0)
            ? static_cast<idx>(traffic.uniform_int(
                  static_cast<std::uint64_t>(pool.size())))
            : static_cast<idx>(traffic.uniform_int(std::min<std::uint64_t>(
                  20, static_cast<std::uint64_t>(pool.size()))));
    futures.push_back(engine.submit(std::vector<double>(
        pool.x.row(pick), pool.x.row(pick) + pool.x.cols())));
  }
  idx flagged = 0;
  for (auto& f : futures)
    if (f.get().label == 1) ++flagged;
  const double serve_seconds = serve_timer.seconds();

  const serve::EngineStats es = engine.stats();
  std::printf("\nserving: %llu requests in %.2fs (%.0f req/s), %llu "
              "micro-batches, %llu circuits simulated, cache hit rate %.0f%%\n",
              static_cast<unsigned long long>(es.requests), serve_seconds,
              static_cast<double>(es.requests) / serve_seconds,
              static_cast<unsigned long long>(es.batches),
              static_cast<unsigned long long>(es.circuits_simulated),
              100.0 * es.cache.hit_rate());
  std::printf("  %lld of %lld streamed transactions flagged illicit "
              "(%lld support vectors resident)\n",
              static_cast<long long>(flagged),
              static_cast<long long>(stream_len),
              static_cast<long long>(engine.bundle().num_support_vectors()));
  return 0;
}
