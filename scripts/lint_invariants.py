#!/usr/bin/env python3
"""Project-invariant linter (DESIGN.md §11).

Codifies the repo-wide rules that clang-tidy and the compiler cannot
express, so they are CI gates instead of review folklore:

  raw-sync          std::mutex / std::condition_variable / std::lock_guard /
                    std::unique_lock / std::scoped_lock / std::shared_mutex
                    appear only inside src/util/sync.hpp. Everything else
                    uses the capability-annotated util::Mutex family, which
                    is what keeps -Werror=thread-safety meaningful (the
                    analysis cannot see through the std types).
  wall-clock        std::chrono::system_clock appears only in util/timer —
                    durations and deadlines everywhere else come from
                    steady_clock so an NTP step cannot corrupt SLO math.
  cloexec           Raw ::socket()/::accept()/::accept4() calls live only in
                    the cloexec_* helpers of src/parallel/socket_transport.cpp,
                    so every fd the serving stack creates carries FD_CLOEXEC
                    (a leaked listener fd in a spawned worker would keep the
                    address bound after the router dies).
  naked-new         No naked `new` expressions: ownership goes through
                    make_unique/make_shared/containers. The deliberate
                    leaked-singleton idiom in tests carries an explicit
                    `lint: allow(naked-new)` waiver.
  byte-budget       Untrusted stream decoders (the shard wire codec) must
                    call the budgeted io::read_vector overload — a hostile
                    length prefix is bounded by remaining payload bytes,
                    not by how much the allocator will give it.
  tsa-escape        Every QKMPS_NO_THREAD_SAFETY_ANALYSIS carries an
                    adjacent comment naming the discipline that replaces
                    the static check.

A finding can be waived with a comment containing `lint: allow(<rule>)`
on the offending line or the line above; waivers are themselves listed in
the report so they stay auditable.

Usage: scripts/lint_invariants.py [--root DIR]
Exit status 0 iff no violations. Report goes to stdout.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SCOPES = ("src", "tools", "tests", "bench", "examples")
EXTENSIONS = {".cpp", ".hpp", ".h", ".cc"}

SYNC_HEADER = pathlib.Path("src/util/sync.hpp")
TIMER_FILES = {pathlib.Path("src/util/timer.hpp"), pathlib.Path("src/util/timer.cpp")}
SOCKET_FILE = pathlib.Path("src/parallel/socket_transport.cpp")
UNTRUSTED_DECODERS = {pathlib.Path("src/serve/shard_wire.cpp")}

RAW_SYNC = re.compile(
    r"std::(mutex|condition_variable\w*|lock_guard|unique_lock|scoped_lock|"
    r"shared_mutex|shared_lock|recursive_mutex|timed_mutex)\b"
)
WALL_CLOCK = re.compile(r"\bsystem_clock\b")
RAW_SOCKET = re.compile(r"::\s*(socket|accept4?)\s*\(")
NAKED_NEW = re.compile(r"\bnew\b\s*(\(|[A-Za-z_:][\w:<]*)")
SINGLE_ARG_READ_VECTOR = re.compile(r"\bread_vector\s*<[^>]*>\s*\(\s*[\w.]+\s*\)")
TSA_ESCAPE = re.compile(r"\bQKMPS_NO_THREAD_SAFETY_ANALYSIS\b")
FUNC_DEF = re.compile(r"^\w[\w:<>*&\s]*\b(\w+)\s*\([^;]*$|^\w[\w:<>*&\s]*\b(\w+)\s*\(.*\)\s*\{")
ALLOW = re.compile(r"lint:\s*allow\(([\w-]+)\)")


def strip_code(text: str) -> list[str]:
    """Returns lines with comments and string/char literals blanked out,
    preserving line numbering so findings map back to the source."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    cur = []
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("".join(cur))
            cur = []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                i += 1
                continue
            if c == "'":
                state = "char"
                i += 1
                continue
            cur.append(c)
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            i += 1
            continue
        if state in ("string", "char"):
            if c == "\\":
                i += 2
                continue
            if (state == "string" and c == '"') or (state == "char" and c == "'"):
                state = "code"
            i += 1
            continue
        i += 1  # line_comment
    out.append("".join(cur))
    return out


class Report:
    def __init__(self) -> None:
        self.violations: list[str] = []
        self.waived: list[str] = []

    def add(self, rel: pathlib.Path, lineno: int, rule: str, msg: str,
            raw_lines: list[str]) -> None:
        here = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        above = raw_lines[lineno - 2] if lineno >= 2 else ""
        for candidate in (here, above):
            m = ALLOW.search(candidate)
            if m and m.group(1) == rule:
                self.waived.append(f"{rel}:{lineno}: [{rule}] waived: {msg}")
                return
        self.violations.append(f"{rel}:{lineno}: [{rule}] {msg}")


def lint_file(root: pathlib.Path, rel: pathlib.Path, report: Report) -> None:
    text = (root / rel).read_text(encoding="utf-8", errors="replace")
    raw_lines = text.splitlines()
    code_lines = strip_code(text)

    in_cloexec_helper = False
    for lineno, code in enumerate(code_lines, start=1):
        if rel != SYNC_HEADER:
            m = RAW_SYNC.search(code)
            if m:
                report.add(rel, lineno, "raw-sync",
                           f"std::{m.group(1)} outside util/sync.hpp — use the "
                           "annotated util::Mutex family", raw_lines)
        if rel not in TIMER_FILES and WALL_CLOCK.search(code):
            report.add(rel, lineno, "wall-clock",
                       "system_clock outside util/timer — use steady_clock",
                       raw_lines)

        if RAW_SOCKET.search(code):
            # Track whether we are inside a cloexec_* helper: the only
            # place a raw socket syscall is allowed to appear.
            if not (rel == SOCKET_FILE and in_cloexec_helper):
                report.add(rel, lineno, "cloexec",
                           "raw socket/accept call — go through "
                           "cloexec_socket()/cloexec_accept() so the fd "
                           "carries FD_CLOEXEC", raw_lines)
        if rel == SOCKET_FILE:
            if re.search(r"\bcloexec_\w+\s*\([^;]*\)\s*\{?\s*$", code) and \
               not code.lstrip().startswith("return") and "=" not in code:
                in_cloexec_helper = True
            elif code.startswith("}"):
                in_cloexec_helper = False

        m = NAKED_NEW.search(code)
        if m and not re.search(r"\boperator\s+new\b", code):
            report.add(rel, lineno, "naked-new",
                       "naked `new` — use make_unique/make_shared or add an "
                       "explicit waiver", raw_lines)

        if rel in UNTRUSTED_DECODERS and SINGLE_ARG_READ_VECTOR.search(code):
            report.add(rel, lineno, "byte-budget",
                       "unbudgeted read_vector in an untrusted decoder — "
                       "pass the remaining-bytes budget", raw_lines)

        if TSA_ESCAPE.search(code) and "#define" not in code:
            window = raw_lines[max(0, lineno - 4):lineno]
            if not any("//" in ln or "/*" in ln for ln in window):
                report.add(rel, lineno, "tsa-escape",
                           "QKMPS_NO_THREAD_SAFETY_ANALYSIS without an "
                           "adjacent comment naming the replacement "
                           "discipline", raw_lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()

    files = []
    for scope in SCOPES:
        base = root / scope
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                files.append(path.relative_to(root))

    report = Report()
    for rel in files:
        lint_file(root, rel, report)

    for line in report.waived:
        print(line)
    for line in report.violations:
        print(line)
    print(f"lint_invariants: {len(files)} files, "
          f"{len(report.violations)} violation(s), "
          f"{len(report.waived)} waiver(s)")
    return 1 if report.violations else 0


if __name__ == "__main__":
    sys.exit(main())
