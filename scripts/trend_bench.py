#!/usr/bin/env python3
"""Append a bench artifact's key metrics to its trend history and fail on
sustained degradation.

Usage: trend_bench.py ARTIFACT.json [--history-dir=DIR] [--window=N]
                      [--min-ratio=F] [--check-only]

Each invocation extracts the artifact's trend-worthy numeric leaves —
throughput figures, speedup ratios, and tail latencies — plus its
provenance (commit, timestamp), and appends one JSON line to
DIR/<bench>.jsonl (default bench/history/<bench>.jsonl, resolved
relative to the repo root). The history file is an append-only ledger:
one line per run, oldest first, safe to commit or to stash as a CI
artifact.

Degradation check: for every tracked metric, the last `window` (default
3) entries — including the run being appended — are examined. The check
fails when a metric has degraded *monotonically* across the whole
window AND the newest value is below `min-ratio` (default 0.85) of the
oldest's: a single noisy run cannot trip it, only a sustained slide.
"Degraded" is direction-aware: lower is worse for throughput/speedup,
higher is worse for latencies (p99/p999 keys).

Exit status: 0 clean (including short histories), 1 sustained
degradation, 2 usage/IO error.
"""

import json
import os
import sys


def is_latency_key(key):
    k = key.lower()
    return ("p99" in k or "p999" in k or "p50" in k) and "seconds" in k


def is_throughput_key(key):
    k = key.lower()
    return "throughput" in k or "speedup" in k


def collect_metrics(node, path, out):
    """Flatten trend-worthy numeric leaves to dotted-path keys."""
    if isinstance(node, dict):
        for key, val in node.items():
            if key == "provenance":
                continue
            collect_metrics(val, f"{path}.{key}" if path else key, out)
        return
    if isinstance(node, list):
        for i, val in enumerate(node):
            collect_metrics(val, f"{path}[{i}]", out)
        return
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return
    leaf = path.rsplit(".", 1)[-1].split("[")[0]
    if is_throughput_key(leaf) or is_latency_key(leaf):
        out[path] = float(node)


def degraded(older, newer, key):
    leaf = key.rsplit(".", 1)[-1].split("[")[0]
    if is_latency_key(leaf):
        return newer > older  # latency: up is worse
    return newer < older  # throughput/speedup: down is worse


def check_window(entries, key, window, min_ratio):
    """True (with detail) when `key` slid monotonically across the last
    `window` entries and lost more than (1 - min_ratio) overall."""
    values = [e["metrics"][key] for e in entries[-window:]
              if key in e.get("metrics", {})]
    if len(values) < window:
        return None
    for older, newer in zip(values, values[1:]):
        if not degraded(older, newer, key):
            return None
    first, last = values[0], values[-1]
    leaf = key.rsplit(".", 1)[-1].split("[")[0]
    if is_latency_key(leaf):
        if first <= 0 or last <= first / min_ratio:
            return (f"{key}: rose monotonically over the last {window} runs "
                    f"({first:g} -> {last:g})")
        return None
    if last < first * min_ratio:
        return (f"{key}: fell monotonically over the last {window} runs "
                f"({first:g} -> {last:g})")
    return None


def main(argv):
    history_dir = None
    window = 3
    min_ratio = 0.85
    check_only = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--history-dir="):
            history_dir = arg.split("=", 1)[1]
        elif arg.startswith("--window="):
            window = int(arg.split("=", 1)[1])
        elif arg.startswith("--min-ratio="):
            min_ratio = float(arg.split("=", 1)[1])
        elif arg == "--check-only":
            check_only = True
        else:
            paths.append(arg)
    if len(paths) != 1:
        print(__doc__.strip().splitlines()[3], file=sys.stderr)
        return 2

    try:
        with open(paths[0]) as f:
            artifact = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trend_bench: {e}", file=sys.stderr)
        return 2

    bench = artifact.get("bench")
    if not bench:
        print("trend_bench: artifact has no 'bench' key", file=sys.stderr)
        return 2

    metrics = {}
    collect_metrics(artifact, "", metrics)
    provenance = artifact.get("provenance", {})
    entry = {
        "bench": bench,
        "commit": provenance.get("commit", "unknown"),
        "generated_utc": provenance.get("generated_utc", "unknown"),
        "metrics": metrics,
    }

    if history_dir is None:
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        history_dir = os.path.join(repo_root, "bench", "history")
    os.makedirs(history_dir, exist_ok=True)
    history_path = os.path.join(history_dir, f"{bench}.jsonl")

    entries = []
    if os.path.exists(history_path):
        with open(history_path) as f:
            for line in f:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
    entries.append(entry)

    if not check_only:
        with open(history_path, "a") as f:
            f.write(json.dumps(entry, sort_keys=True) + "\n")

    failures = []
    for key in sorted(metrics):
        detail = check_window(entries, key, window, min_ratio)
        if detail:
            failures.append(detail)

    verb = "checked" if check_only else "appended"
    print(f"trend_bench: {bench}: {verb} {len(metrics)} metric(s), "
          f"history depth {len(entries)} -> {history_path}")
    if failures:
        print(f"trend_bench: {bench}: sustained degradation over the last "
              f"{window} runs:")
        for f in failures:
            print(f"  {f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
