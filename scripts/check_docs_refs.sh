#!/usr/bin/env sh
# Docs lint: fail if README.md or DESIGN.md reference repo files that do
# not exist. Catches the classic dangling-citation rot (a header citing a
# DESIGN.md section that was never written is how this script came to be).
#
# What counts as a reference: a backtick-quoted path rooted at one of the
# source directories (src/ tests/ bench/ examples/ scripts/ tools/), or a
# backtick-quoted top-level *.md file. Runtime artifacts (build/ paths,
# JSON outputs) and glob-ish names containing <>* are ignored. A bench,
# example, or tool referenced by its executable name (e.g.
# `bench/serving_ranked`, `tools/serving_rankd`) resolves if the matching
# .cpp exists.
set -eu
cd "$(dirname "$0")/.."

status=0
for doc in README.md DESIGN.md; do
  if [ ! -f "$doc" ]; then
    echo "missing doc: $doc"
    status=1
    continue
  fi
  refs=$(grep -oE '`[A-Za-z0-9_./-]+`' "$doc" | tr -d '`' |
         grep -E '^((src|tests|bench|examples|scripts|tools)/[A-Za-z0-9_./-]+|[A-Za-z0-9_-]+\.md)$' |
         sort -u)
  for ref in $refs; do
    if [ -e "$ref" ] || [ -e "$ref.cpp" ] || [ -e "$ref.hpp" ]; then
      continue
    fi
    echo "$doc references missing path: $ref"
    status=1
  done
done

# The observability subsystem is pure cross-cutting documentation — its
# header comments cite the design doc, the suites that pin each contract,
# and the layers that report into it. Hold those citations to the same
# no-dangling-reference standard as the top-level docs (bare paths, no
# backticks required in code comments).
for hdr in src/obs/*.hpp; do
  refs=$(grep -oE '(src|tests|bench|examples|scripts|tools)/[A-Za-z0-9_./-]+' \
           "$hdr" | sed 's/[.]$//' | sort -u)
  for ref in $refs; do
    if [ -e "$ref" ] || [ -e "$ref.cpp" ] || [ -e "$ref.hpp" ]; then
      continue
    fi
    echo "$hdr references missing path: $ref"
    status=1
  done
done

if [ "$status" -eq 0 ]; then
  echo "docs refs OK"
fi
exit $status
