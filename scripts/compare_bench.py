#!/usr/bin/env python3
"""Diff a serving bench artifact against its checked-in baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json [--throughput-tolerance=F]

The two JSON documents are walked in lockstep, leaf by leaf, and each
baseline leaf is classified by how machine-dependent it is:

  * Scale-free facts must match or hold exactly: scenario digests and
    workload shape (requests, unique_points, features) must be equal —
    a mismatch means the comparison is between different workloads, not
    a regression — and a boolean gate that was true in the baseline
    (parity_ok, resize_gate_ok, trace_gate_ok, self_heal.ok, ...) must
    still be true.
  * Throughput numbers (any numeric key containing "throughput") are
    machine-dependent: they only fail when the current run drops more
    than the tolerance (default 25%) below the baseline. Baselines are
    recorded conservatively (see bench/baselines/README.md), so a trip
    of this gate on CI hardware is a real regression, not scheduler
    noise.
  * Speedup ratios (any numeric key containing "speedup") gate the same
    way: they are already normalized to the machine (both sides of the
    ratio ran on the same box), so a drop below (1 - tolerance) of the
    baseline ratio means the optimization itself regressed — e.g. the
    batched kernel pass (kernels.json) losing its edge over the
    one-at-a-time path.
  * Everything else (latencies, hit rates, pids, timings) is
    informational and never gates.

Keys present in the current artifact but not the baseline are ignored —
new fields must not require a baseline refresh to land. Keys present in
the baseline but missing from the current artifact fail: a gate that
silently disappears is itself a regression.

Exit status: 0 clean, 1 any failure, 2 usage/IO error.
"""

import json
import sys

EXACT_KEYS = {"bench", "transport", "quick", "requests", "unique_points",
              "features"}


def classify(key):
    if key in EXACT_KEYS or key.endswith("digest"):
        return "exact"
    if "throughput" in key.lower() or "speedup" in key.lower():
        return "throughput"
    return "info"


def walk(base, cur, path, tolerance, failures):
    if isinstance(base, dict):
        if not isinstance(cur, dict):
            failures.append(f"{path}: object in baseline, {type(cur).__name__} now")
            return
        for key, bval in base.items():
            # Provenance (commit, timestamp, build config) differs on
            # every run by design; a baseline's provenance never gates.
            if key == "provenance":
                continue
            if key not in cur:
                failures.append(f"{path}.{key}: present in baseline, missing now")
                continue
            walk(bval, cur[key], f"{path}.{key}", tolerance, failures)
        return
    if isinstance(base, list):
        if not isinstance(cur, list):
            failures.append(f"{path}: array in baseline, {type(cur).__name__} now")
            return
        if len(base) != len(cur):
            failures.append(f"{path}: {len(base)} entries in baseline, {len(cur)} now")
            return
        for i, (bval, cval) in enumerate(zip(base, cur)):
            walk(bval, cval, f"{path}[{i}]", tolerance, failures)
        return

    key = path.rsplit(".", 1)[-1].split("[")[0]
    kind = classify(key)
    # bool is an int subclass; test it first so gates never get the
    # numeric-tolerance treatment.
    if isinstance(base, bool):
        if base and not cur:
            failures.append(f"{path}: gate regressed true -> {cur!r}")
        return
    if kind == "exact":
        if base != cur:
            failures.append(f"{path}: expected {base!r}, got {cur!r}")
        return
    if kind == "throughput" and isinstance(base, (int, float)):
        if not isinstance(cur, (int, float)) or cur < (1.0 - tolerance) * base:
            failures.append(
                f"{path}: {cur!r} req/s is more than {tolerance:.0%} below "
                f"the baseline {base!r} req/s")
        return
    # info: never gates.


def main(argv):
    tolerance = 0.25
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--throughput-tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    try:
        with open(paths[0]) as f:
            base = json.load(f)
        with open(paths[1]) as f:
            cur = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"compare_bench: {e}", file=sys.stderr)
        return 2

    failures = []
    walk(base, cur, "$", tolerance, failures)
    name = base.get("bench", paths[0])
    if failures:
        print(f"compare_bench: {name}: {len(failures)} regression(s) "
              f"vs {paths[0]}:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"compare_bench: {name}: OK vs {paths[0]} "
          f"(throughput tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
