#!/bin/sh
# clang-tidy driver for the lint CI job (DESIGN.md §11). Configures a
# compile database and runs the .clang-tidy profile over first-party
# sources (src/ + tools/). Report-only today: the caller decides whether
# findings gate (the CI job uploads the report as an artifact while the
# gating lint signal comes from lint_invariants.py and the clang
# -Werror=thread-safety build).
#
# Usage: scripts/run_clang_tidy.sh [build-dir]   (default: build-tidy)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tidy"}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH; skipping" >&2
  exit 0
fi

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DQKMPS_BUILD_TESTS=OFF -DQKMPS_BUILD_BENCH=OFF \
  -DQKMPS_BUILD_EXAMPLES=OFF >/dev/null

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "$build_dir" -quiet "$repo_root/(src|tools)/.*\.cpp"
else
  # Fall back to invoking clang-tidy file-by-file when the parallel
  # driver script isn't installed.
  find "$repo_root/src" "$repo_root/tools" -name '*.cpp' \
    -exec clang-tidy -p "$build_dir" --quiet {} +
fi
